"""Hot-path micro-benchmarks: events per second on pinned seeds.

``repro bench`` runs a fixed set of workloads that exercise the three
layers the simulator spends its time in -- the DES kernel's
timeout/resume cycle, the event/condition machinery, and the fNoC
packet path -- plus one end-to-end SSD sweep point, and writes the
measurements to ``BENCH_kernel.json``.  The committed copy of that file
is the repo's perf baseline: CI re-runs the suite with ``--check`` and
fails when events/sec regresses more than ``--tolerance`` (default 30%)
below the baseline.

Every workload is fully deterministic (pinned seeds, fixed iteration
counts), so the *event counts* are exact and reproducible; only the
wall-clock varies with the host.  The events/sec metric divides the
kernel's scheduled-callback count (``Simulator`` sequence counter, which
equals the number of executed heap entries once the queue drains) by the
best-of-N wall time.

The suite also reports ``speedup_vs_callback_path`` where the kernel
supports the ``direct_resume`` flag: the same kernel workloads re-run
through the legacy ``Event.callbacks`` wiring, giving an in-situ measure
of what the fast-resume path buys.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .sim import Simulator

__all__ = ["run_benchmarks", "check_regression", "write_report", "main",
           "BENCH_FILE"]

#: Default output / baseline file name (repo root in CI).
BENCH_FILE = "BENCH_kernel.json"

#: Events/sec measured with this same harness (full mode, best-of-3) at
#: the pre-PR commit (09b91a4), before the fast-resume kernel and the
#: fNoC route cache landed.  The event counts were identical then --
#: the optimizations change wall time only -- so rate ratios are the
#: per-workload speedups.  Host-specific by nature: refresh alongside
#: BENCH_kernel.json whenever the reference machine changes.
PRE_PR_EVENTS_PER_SEC: Dict[str, float] = {
    "timeout_chain": 242267.1,
    "event_fanout": 304487.6,
    "fnoc_storm": 192084.9,
    "ssd_point": 184380.7,
}


# ---------------------------------------------------------------------------
# Workloads.  Each returns (events, wall_seconds) for one run.
# ---------------------------------------------------------------------------

def _make_sim(legacy: bool) -> Simulator:
    if legacy:
        return Simulator(direct_resume=False)
    return Simulator()


def _supports_legacy_flag() -> bool:
    try:
        _make_sim(True)
    except TypeError:
        return False
    return True


def bench_timeout_chain(quick: bool, legacy: bool = False) -> Tuple[int, float]:
    """The dominant pattern: many processes looping on ``yield timeout``."""
    procs = 100 if quick else 400
    steps = 250 if quick else 1000
    sim = _make_sim(legacy)

    def worker(sim, index, steps):
        delay = 0.5 + (index % 7) * 0.25
        for _ in range(steps):
            yield sim.timeout(delay)

    for index in range(procs):
        sim.process(worker(sim, index, steps))
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return sim._seq, wall


def bench_event_fanout(quick: bool, legacy: bool = False) -> Tuple[int, float]:
    """Events with waiters, joins, and AllOf/AnyOf condition churn."""
    rounds = 150 if quick else 600
    width = 8
    sim = _make_sim(legacy)

    def child(sim, delay):
        yield sim.timeout(delay)
        return delay

    def coordinator(sim):
        for round_index in range(rounds):
            children = [
                sim.process(child(sim, 0.25 + (i % 3) * 0.5))
                for i in range(width)
            ]
            yield sim.all_of(children)
            racers = [
                sim.process(child(sim, 1.0 + i * 0.125))
                for i in range(width)
            ]
            winner, _value = yield sim.any_of(racers)
            yield sim.all_of(racers)  # drain the losers deterministically

    sim.process(coordinator(sim))
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return sim._seq, wall


def bench_fnoc_storm(quick: bool, legacy: bool = False) -> Tuple[int, float]:
    """Seeded all-to-all packet storm over the paper's default fNoC."""
    import random

    from .noc.network import FNoC
    from .noc.packet import Packet
    from .noc.topology import Mesh1D

    k = 8
    per_source = 150 if quick else 600
    rng = random.Random(0xF0C)
    sim = _make_sim(legacy)
    noc = FNoC(sim, Mesh1D(k), channel_bandwidth=1000.0)
    # Pre-draw destinations so RNG order never depends on interleaving.
    plans = [
        [(rng.randrange(k - 1), rng.choice((4096, 8192, 16384)))
         for _ in range(per_source)]
        for _src in range(k)
    ]

    def source(sim, src, plan):
        for offset, size in plan:
            dst = (src + 1 + offset) % k
            yield sim.process(noc.send(
                Packet(src=src, dst=dst, payload_bytes=size)))
            yield sim.timeout(0.5)

    for src in range(k):
        sim.process(source(sim, src, plans[src]))
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return sim._seq, wall


def bench_ssd_point(quick: bool, legacy: bool = False) -> Tuple[int, float]:
    """One canonical fig-sweep point: dSSD_f under a mixed workload."""
    from .core import build_ssd
    from .workloads import SyntheticWorkload

    duration = 10_000.0 if quick else 40_000.0
    ssd = build_ssd("dssd_f")
    if legacy:
        raise NotImplementedError("ssd point runs on the default kernel only")
    workload = SyntheticWorkload(pattern="mixed", io_size=4096,
                                 read_fraction=0.5)
    t0 = time.perf_counter()
    ssd.run(workload, duration_us=duration)
    wall = time.perf_counter() - t0
    return ssd.sim._seq, wall


#: name -> (callable, supports the legacy kernel flag)
WORKLOADS: Dict[str, Tuple[Callable[..., Tuple[int, float]], bool]] = {
    "timeout_chain": (bench_timeout_chain, True),
    "event_fanout": (bench_event_fanout, True),
    "fnoc_storm": (bench_fnoc_storm, True),
    "ssd_point": (bench_ssd_point, False),
}


# ---------------------------------------------------------------------------
# Harness.
# ---------------------------------------------------------------------------

def _measure(fn: Callable[..., Tuple[int, float]], quick: bool,
             legacy: bool, repeats: int) -> Dict[str, float]:
    events = 0
    best = float("inf")
    for _ in range(repeats):
        run_events, wall = fn(quick, legacy=legacy)
        events = run_events
        best = min(best, wall)
    return {
        "events": events,
        "wall_s": round(best, 6),
        "events_per_sec": round(events / best, 1) if best > 0 else 0.0,
    }


def run_benchmarks(quick: bool = False,
                   repeats: Optional[int] = None) -> Dict[str, Any]:
    """Run the full suite; returns the report dict (not yet written)."""
    repeats = repeats if repeats else (2 if quick else 3)
    report: Dict[str, Any] = {
        "schema": 1,
        "quick": quick,
        "python": platform.python_version(),
        "benchmarks": {},
        "legacy_path": {},
    }
    has_legacy = _supports_legacy_flag()
    for name, (fn, legacy_capable) in WORKLOADS.items():
        report["benchmarks"][name] = _measure(fn, quick, False, repeats)
        if has_legacy and legacy_capable:
            report["legacy_path"][name] = _measure(fn, quick, True, repeats)
    speedups = {}
    for name, legacy_entry in report["legacy_path"].items():
        fast = report["benchmarks"][name]["events_per_sec"]
        slow = legacy_entry["events_per_sec"]
        if slow > 0:
            speedups[name] = round(fast / slow, 3)
    if speedups:
        report["speedup_vs_callback_path"] = speedups
    # Pre-PR comparison: only meaningful in full mode, where the pinned
    # workloads match the configuration the baseline was captured with.
    if not quick:
        vs_pre = {}
        for name, pre_rate in PRE_PR_EVENTS_PER_SEC.items():
            entry = report["benchmarks"].get(name)
            if entry and pre_rate > 0:
                vs_pre[name] = round(entry["events_per_sec"] / pre_rate, 3)
        if vs_pre:
            report["speedup_vs_pre_pr"] = vs_pre
            product = 1.0
            for ratio in vs_pre.values():
                product *= ratio
            report["speedup_geomean"] = round(
                product ** (1.0 / len(vs_pre)), 3)
    return report


def check_regression(current: Dict[str, Any], baseline: Dict[str, Any],
                     tolerance: float = 0.30) -> List[str]:
    """Names of benchmarks whose events/sec fell below the baseline band."""
    failures = []
    for name, entry in baseline.get("benchmarks", {}).items():
        cur = current.get("benchmarks", {}).get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        floor = (1.0 - tolerance) * entry.get("events_per_sec", 0.0)
        if cur["events_per_sec"] < floor:
            failures.append(
                f"{name}: {cur['events_per_sec']:.0f} events/s < "
                f"{floor:.0f} (baseline {entry['events_per_sec']:.0f} "
                f"- {tolerance:.0%})"
            )
    return failures


def write_report(report: Dict[str, Any], path: str = BENCH_FILE) -> None:
    """Write the report as deterministic, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(quick: bool = False, output: Optional[str] = None,
         check: Optional[str] = None, tolerance: float = 0.30,
         repeats: Optional[int] = None) -> int:
    """CLI entry: run, print a table, write JSON, optionally gate."""
    report = run_benchmarks(quick=quick, repeats=repeats)
    width = max(len(name) for name in report["benchmarks"])
    print(f"{'benchmark':<{width}} | {'events':>9} | {'wall_s':>8} | "
          f"{'events/sec':>12}")
    print("-" * (width + 40))
    for name, entry in report["benchmarks"].items():
        print(f"{name:<{width}} | {entry['events']:>9} | "
              f"{entry['wall_s']:>8.4f} | {entry['events_per_sec']:>12.0f}")
    for name, ratio in report.get("speedup_vs_callback_path", {}).items():
        print(f"[speedup vs callback path] {name}: {ratio:.2f}x",
              file=sys.stderr)
    for name, ratio in report.get("speedup_vs_pre_pr", {}).items():
        print(f"[speedup vs pre-PR kernel] {name}: {ratio:.2f}x",
              file=sys.stderr)
    if "speedup_geomean" in report:
        print(f"[speedup vs pre-PR kernel] geometric mean: "
              f"{report['speedup_geomean']:.2f}x", file=sys.stderr)
    if output:
        write_report(report, output)
        print(f"[bench] wrote {output}", file=sys.stderr)
    if check:
        with open(check) as handle:
            baseline = json.load(handle)
        failures = check_regression(report, baseline, tolerance)
        if failures:
            for line in failures:
                print(f"[bench] REGRESSION {line}", file=sys.stderr)
            return 1
        print(f"[bench] within {tolerance:.0%} of baseline {check}",
              file=sys.stderr)
    return 0
