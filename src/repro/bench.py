"""Hot-path micro-benchmarks: events per second on pinned seeds.

``repro bench`` runs a fixed set of workloads that exercise the three
layers the simulator spends its time in -- the DES kernel's
timeout/resume cycle, the event/condition machinery, and the fNoC
packet path -- plus one end-to-end SSD sweep point, and writes the
measurements to ``BENCH_kernel.json``.  The committed copy of that file
is the repo's perf baseline: CI re-runs the suite with ``--check`` and
fails when events/sec regresses more than ``--tolerance`` (default 30%)
below the baseline.

Every workload is fully deterministic (pinned seeds, fixed iteration
counts), so the *event counts* are exact and reproducible; only the
wall-clock varies with the host.  The events/sec metric divides the
kernel's scheduled-callback count (``Simulator`` sequence counter, which
equals the number of executed heap entries once the queue drains) by the
best-of-N wall time.

Schema 2: every workload runs uniformly under every available kernel
backend (``pure``, ``legacy``, and ``fast`` when the optional compiled
extension is installed -- see :mod:`repro.sim.backend`), recorded under
``report["backends"][name]["benchmarks"]``.  The report carries
provenance (python, CPU model, compiled-backend status) so a baseline
captured on one host is never silently compared against another;
``--check`` compares like-for-like backends only and still understands
committed schema-1 baselines.  The harness also cross-checks that the
scheduled-event *counts* agree across backends -- a free byte-identity
smoke on every bench run.

``--check`` prints a per-workload delta table (baseline vs current
events/sec, percent change, the gate's pass/fail verdict) before the
exit-code decision, and every full (non-``--quick``) run appends its
schema-2 report plus the git commit to ``benchmarks/history.jsonl`` so
the perf timeline survives baseline overwrites (``load_history``).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from .sim import Simulator, fast_backend_status, make_simulator

__all__ = ["run_benchmarks", "check_regression", "delta_table",
           "write_report", "append_history", "load_history", "main",
           "provenance", "provenance_note", "BENCH_FILE", "HISTORY_FILE"]

#: Default output / baseline file name (repo root in CI).
BENCH_FILE = "BENCH_kernel.json"

#: Append-only JSONL log of full (non-quick) runs, one record per run.
HISTORY_FILE = "benchmarks/history.jsonl"


# ---------------------------------------------------------------------------
# Workloads.  Each returns (events, wall_seconds) for one run.
# ---------------------------------------------------------------------------

def _make_sim(backend: str) -> Simulator:
    sim, _resolved = make_simulator(backend)
    return sim


def bench_timeout_chain(quick: bool,
                        backend: str = "pure") -> Tuple[int, float]:
    """The dominant pattern: many processes looping on ``yield timeout``."""
    procs = 100 if quick else 400
    steps = 250 if quick else 1000
    sim = _make_sim(backend)

    def worker(sim, index, steps):
        delay = 0.5 + (index % 7) * 0.25
        for _ in range(steps):
            yield sim.timeout(delay)

    for index in range(procs):
        sim.process(worker(sim, index, steps))
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return sim._seq, wall


def bench_event_fanout(quick: bool,
                       backend: str = "pure") -> Tuple[int, float]:
    """Events with waiters, joins, and AllOf/AnyOf condition churn."""
    rounds = 150 if quick else 600
    width = 8
    sim = _make_sim(backend)

    def child(sim, delay):
        yield sim.timeout(delay)
        return delay

    def coordinator(sim):
        for round_index in range(rounds):
            children = [
                sim.process(child(sim, 0.25 + (i % 3) * 0.5))
                for i in range(width)
            ]
            yield sim.all_of(children)
            racers = [
                sim.process(child(sim, 1.0 + i * 0.125))
                for i in range(width)
            ]
            winner, _value = yield sim.any_of(racers)
            yield sim.all_of(racers)  # drain the losers deterministically

    sim.process(coordinator(sim))
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return sim._seq, wall


def bench_fnoc_storm(quick: bool, backend: str = "pure") -> Tuple[int, float]:
    """Seeded all-to-all packet storm over the paper's default fNoC."""
    import random

    from .noc.packet import Packet
    from .noc.topology import Mesh1D

    k = 8
    per_source = 150 if quick else 600
    rng = random.Random(0xF0C)
    sim = _make_sim(backend)
    noc = sim.fnoc(Mesh1D(k), channel_bandwidth=1000.0)
    # Pre-draw destinations so RNG order never depends on interleaving.
    plans = [
        [(rng.randrange(k - 1), rng.choice((4096, 8192, 16384)))
         for _ in range(per_source)]
        for _src in range(k)
    ]

    def source(sim, src, plan):
        for offset, size in plan:
            dst = (src + 1 + offset) % k
            yield sim.process(noc.send(
                Packet(src=src, dst=dst, payload_bytes=size)))
            yield sim.timeout(0.5)

    for src in range(k):
        sim.process(source(sim, src, plans[src]))
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return sim._seq, wall


def bench_ssd_point(quick: bool, backend: str = "pure") -> Tuple[int, float]:
    """One canonical fig-sweep point: dSSD_f under a mixed workload."""
    from .core import build_ssd
    from .workloads import SyntheticWorkload

    duration = 10_000.0 if quick else 40_000.0
    ssd = build_ssd("dssd_f", backend=backend)
    workload = SyntheticWorkload(pattern="mixed", io_size=4096,
                                 read_fraction=0.5)
    t0 = time.perf_counter()
    ssd.run(workload, duration_us=duration)
    wall = time.perf_counter() - t0
    return ssd.sim._seq, wall


#: name -> workload callable; every workload runs on every backend.
WORKLOADS: Dict[str, Callable[..., Tuple[int, float]]] = {
    "timeout_chain": bench_timeout_chain,
    "event_fanout": bench_event_fanout,
    "fnoc_storm": bench_fnoc_storm,
    "ssd_point": bench_ssd_point,
}


# ---------------------------------------------------------------------------
# Harness.
# ---------------------------------------------------------------------------

def _cpu_model() -> str:
    """Human-readable CPU model, best effort across platforms."""
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def provenance() -> Dict[str, str]:
    """Where these numbers came from -- recorded into every report."""
    available, detail = fast_backend_status()
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu": _cpu_model(),
        "fast_backend": detail if available else f"unavailable ({detail})",
    }


def _measure(fn: Callable[..., Tuple[int, float]], quick: bool,
             backend: str, repeats: int) -> Dict[str, float]:
    events = 0
    best = float("inf")
    for _ in range(repeats):
        run_events, wall = fn(quick, backend=backend)
        events = run_events
        best = min(best, wall)
    return {
        "events": events,
        "wall_s": round(best, 6),
        "events_per_sec": round(events / best, 1) if best > 0 else 0.0,
    }


def available_backends() -> List[str]:
    """Backends the suite measures on this host, reference first."""
    backends = ["pure", "legacy"]
    if fast_backend_status()[0]:
        backends.append("fast")
    return backends


def run_benchmarks(quick: bool = False,
                   repeats: Optional[int] = None) -> Dict[str, Any]:
    """Run the full suite; returns the report dict (not yet written).

    Raises ``RuntimeError`` if any workload's deterministic event count
    disagrees across backends -- that would mean the backends are not
    observationally equivalent and every equivalence guarantee is void.
    """
    repeats = repeats if repeats else (2 if quick else 3)
    backends = available_backends()
    report: Dict[str, Any] = {
        "schema": 2,
        "quick": quick,
        "provenance": provenance(),
        "backends": {name: {"benchmarks": {}} for name in backends},
    }
    for name, fn in WORKLOADS.items():
        for backend in backends:
            report["backends"][backend]["benchmarks"][name] = \
                _measure(fn, quick, backend, repeats)
        counts = {
            backend: report["backends"][backend]["benchmarks"][name]["events"]
            for backend in backends
        }
        if len(set(counts.values())) != 1:
            raise RuntimeError(
                f"backend divergence: workload {name!r} scheduled "
                f"different event counts per backend: {counts}"
            )
    pure = report["backends"]["pure"]["benchmarks"]
    speedups = {}
    for name, legacy_entry in report["backends"]["legacy"]["benchmarks"] \
            .items():
        slow = legacy_entry["events_per_sec"]
        if slow > 0:
            speedups[name] = round(pure[name]["events_per_sec"] / slow, 3)
    if speedups:
        report["speedup_vs_callback_path"] = speedups
    if "fast" in report["backends"]:
        fast_speedups = {}
        for name, entry in report["backends"]["fast"]["benchmarks"].items():
            base = pure[name]["events_per_sec"]
            if base > 0:
                fast_speedups[name] = round(
                    entry["events_per_sec"] / base, 3)
        report["speedup_fast_vs_pure"] = fast_speedups
    return report


def _backend_tables(report: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Normalize schema 1 or 2 to ``{backend: {workload: entry}}``.

    Schema 1 stored the default-kernel numbers under ``benchmarks`` and
    the callback-path numbers under ``legacy_path``; schema 2 keys every
    backend uniformly under ``backends``.
    """
    if "backends" in report:
        return {name: dict(entry.get("benchmarks", {}))
                for name, entry in report["backends"].items()}
    tables: Dict[str, Dict[str, Any]] = {}
    if report.get("benchmarks"):
        tables["pure"] = dict(report["benchmarks"])
    if report.get("legacy_path"):
        tables["legacy"] = dict(report["legacy_path"])
    return tables


def check_regression(current: Dict[str, Any], baseline: Dict[str, Any],
                     tolerance: float = 0.30) -> List[str]:
    """Regression descriptions, comparing like-for-like backends only.

    A backend present in the baseline but not measured now (e.g. the
    baseline host had the compiled extension, this one does not) is
    skipped -- cross-backend comparison would gate speed claims the
    current host cannot reproduce.  A *workload* missing inside a shared
    backend is still a failure.
    """
    failures = []
    current_tables = _backend_tables(current)
    baseline_tables = _backend_tables(baseline)
    for backend in sorted(baseline_tables):
        if backend not in current_tables:
            continue
        observed = current_tables[backend]
        for name, entry in baseline_tables[backend].items():
            cur = observed.get(name)
            label = f"{backend}/{name}"
            if cur is None:
                failures.append(f"{label}: missing from current run")
                continue
            floor = (1.0 - tolerance) * entry.get("events_per_sec", 0.0)
            if cur["events_per_sec"] < floor:
                failures.append(
                    f"{label}: {cur['events_per_sec']:.0f} events/s < "
                    f"{floor:.0f} (baseline {entry['events_per_sec']:.0f} "
                    f"- {tolerance:.0%})"
                )
    return failures


def delta_table(current: Dict[str, Any], baseline: Dict[str, Any],
                tolerance: float = 0.30) -> str:
    """Per-workload baseline-vs-current comparison, as printable text.

    One row per ``(backend, workload)`` in the baseline: baseline and
    current events/sec, percent change, and the verdict the regression
    gate applies (``FAIL`` below ``(1 - tolerance) x baseline``).  A
    backend the current host did not measure is marked ``skip``, never
    ``FAIL`` -- mirroring :func:`check_regression` exactly, so the table
    is the human-readable form of the gate's decision.
    """
    current_tables = _backend_tables(current)
    baseline_tables = _backend_tables(baseline)
    rows: List[Tuple[str, str, str, str, str]] = []
    for backend in sorted(baseline_tables):
        measured = current_tables.get(backend)
        for name in sorted(baseline_tables[backend]):
            base = baseline_tables[backend][name].get("events_per_sec", 0.0)
            label = f"{base:.0f}"
            if measured is None:
                rows.append((backend, name, label, "-",
                             "skip (backend not measured)"))
                continue
            entry = measured.get(name)
            if entry is None:
                rows.append((backend, name, label, "-", "FAIL (missing)"))
                continue
            cur = entry["events_per_sec"]
            delta = f"{(cur - base) / base * 100.0:+.1f}%" if base > 0 \
                else "n/a"
            ok = cur >= (1.0 - tolerance) * base
            rows.append((backend, name, label, f"{cur:.0f}",
                         f"{delta} {'ok' if ok else 'FAIL'}"))
    headers = ("backend", "workload", "base ev/s", "now ev/s", "delta")
    widths = [max(len(headers[col]), *(len(row[col]) for row in rows))
              if rows else len(headers[col]) for col in range(5)]
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "-+-".join("-" * w for w in widths)]
    for row in rows:
        lines.append(" | ".join(cell.ljust(w)
                                for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _git_sha() -> str:
    """Commit hash for history provenance; best effort, never raises."""
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"],
                              capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def append_history(report: Dict[str, Any],
                   path: str = HISTORY_FILE) -> Dict[str, Any]:
    """Append one run record to the JSONL history; returns the record.

    The record is the full schema-2 report plus the git commit it was
    measured at, so a perf timeline can be reconstructed offline
    (``load_history``) without re-running anything.
    """
    record: Dict[str, Any] = {"git_sha": _git_sha()}
    record.update(report)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def load_history(path: str = HISTORY_FILE) -> List[Dict[str, Any]]:
    """Parse the bench history JSONL (blank lines tolerated)."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def provenance_note(current: Dict[str, Any],
                    baseline: Dict[str, Any]) -> Optional[str]:
    """Warning line when the baseline came from different hardware."""
    mine = current.get("provenance", {}).get("cpu")
    theirs = baseline.get("provenance", {}).get("cpu")
    if theirs is None:
        return ("baseline has no provenance (schema 1); wall-clock "
                "comparison may span different hosts")
    if mine != theirs:
        return (f"baseline CPU differs: baseline={theirs!r} "
                f"current={mine!r}; events/sec is host-relative")
    return None


def write_report(report: Dict[str, Any], path: str = BENCH_FILE) -> None:
    """Write the report as deterministic, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(quick: bool = False, output: Optional[str] = None,
         check: Optional[str] = None, tolerance: float = 0.30,
         repeats: Optional[int] = None, history: bool = True) -> int:
    """CLI entry: run, print a table, write JSON, optionally gate.

    Full (non-``quick``) runs are also appended to
    :data:`HISTORY_FILE` unless *history* is false; quick runs never
    are (CI smoke numbers would drown the timeline in noise).
    """
    report = run_benchmarks(quick=quick, repeats=repeats)
    tables = _backend_tables(report)
    width = max(len(name) for table in tables.values() for name in table)
    bwidth = max(len(name) for name in tables)
    print(f"{'benchmark':<{width}} | {'backend':<{bwidth}} | "
          f"{'events':>9} | {'wall_s':>8} | {'events/sec':>12}")
    print("-" * (width + bwidth + 43))
    for name in next(iter(tables.values())):
        for backend, table in tables.items():
            entry = table.get(name)
            if entry is None:
                continue
            print(f"{name:<{width}} | {backend:<{bwidth}} | "
                  f"{entry['events']:>9} | {entry['wall_s']:>8.4f} | "
                  f"{entry['events_per_sec']:>12.0f}")
    for name, ratio in report.get("speedup_vs_callback_path", {}).items():
        print(f"[speedup vs callback path] {name}: {ratio:.2f}x",
              file=sys.stderr)
    for name, ratio in report.get("speedup_fast_vs_pure", {}).items():
        print(f"[speedup fast vs pure] {name}: {ratio:.2f}x",
              file=sys.stderr)
    if output:
        write_report(report, output)
        print(f"[bench] wrote {output}", file=sys.stderr)
    if not quick and history:
        record = append_history(report)
        print(f"[bench] appended run at {record['git_sha'][:12]} to "
              f"{HISTORY_FILE}", file=sys.stderr)
    if check:
        with open(check) as handle:
            baseline = json.load(handle)
        note = provenance_note(report, baseline)
        if note:
            print(f"[bench] NOTE {note}", file=sys.stderr)
        print()
        print(delta_table(report, baseline, tolerance))
        failures = check_regression(report, baseline, tolerance)
        if failures:
            for line in failures:
                print(f"[bench] REGRESSION {line}", file=sys.stderr)
            return 1
        print(f"[bench] within {tolerance:.0%} of baseline {check}",
              file=sys.stderr)
    return 0
