"""Tenant-to-device placement via consistent hashing.

A fleet routes each tenant stream to exactly one device.  The ring
hashes every device onto ``vnodes`` points of a 64-bit circle and sends
a tenant to the first device point at or after the tenant's own hash --
the classic consistent-hashing construction, so adding or removing one
device only moves the tenants that hashed between it and its ring
predecessors, not the whole fleet.

Hashing uses SHA-256, **never** the builtin :func:`hash`: Python
randomizes string hashing per process (``PYTHONHASHSEED``), which would
scatter tenants differently in every worker and break the runner's
content-addressed cache.  With SHA-256 the placement map is a pure
function of the device ids and tenant names, identical across
processes, machines, and ``--jobs`` values.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ConfigError

__all__ = ["ConsistentHashRing", "stable_hash"]

#: Ring points per device; 64 keeps the max/mean load ratio near 1.3
#: for fleets of a few dozen devices.
DEFAULT_VNODES = 64


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of *key* (SHA-256 prefix)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Maps string keys (tenant names) to members (device ids).

    Membership order does not matter: the ring built from
    ``["d0", "d1"]`` and ``["d1", "d0"]`` is identical, so the
    placement map is a pure function of the *set* of device ids.
    """

    def __init__(self, members: Sequence[str],
                 vnodes: int = DEFAULT_VNODES):
        members = list(members)
        if not members:
            raise ConfigError("consistent-hash ring needs >= 1 member")
        if len(set(members)) != len(members):
            raise ConfigError(f"duplicate ring members: {sorted(members)}")
        if vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1: {vnodes}")
        self.members: Tuple[str, ...] = tuple(sorted(members))
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for member in self.members:
            for replica in range(vnodes):
                points.append((stable_hash(f"{member}#{replica}"), member))
        # Ties (astronomically unlikely) break on member id, keeping the
        # ring deterministic regardless of construction order.
        points.sort()
        self._hashes: List[int] = [point for point, _ in points]
        self._owners: List[str] = [member for _, member in points]

    def device_for(self, key: str) -> str:
        """The member owning *key*: first ring point at/after its hash."""
        index = bisect.bisect_left(self._hashes, stable_hash(key))
        if index == len(self._hashes):
            index = 0  # wrap around the circle
        return self._owners[index]

    def assignments(self, keys: Iterable[str]) -> Dict[str, List[str]]:
        """Every member's key list (present even when empty).

        Keys keep their input order within each member's list, so the
        caller's tenant ordering survives placement.
        """
        placed: Dict[str, List[str]] = {m: [] for m in self.members}
        for key in keys:
            placed[self.device_for(key)].append(key)
        return placed
