"""Fleet-scale sharded simulation.

Orchestrates N independent simulated SSDs -- heterogeneous configs and
pre-aged wear states -- behind a consistent-hash tenant placement map,
fans the shards over the experiment runner's worker pool, and merges
per-device latency recorders into exact fleet-level p99/p999.  Built on
the device checkpoint protocol (:mod:`repro.core.checkpoint`): every
shard boots by restoring an aged snapshot, so aging is paid once per
unique device recipe, not once per shard.
"""

from .orchestrator import (
    DeviceSpec,
    FleetSpec,
    TenantStream,
    device_snapshot_state,
    run_fleet,
    shard_point,
)
from .placement import ConsistentHashRing, stable_hash

__all__ = [
    "ConsistentHashRing",
    "DeviceSpec",
    "FleetSpec",
    "TenantStream",
    "device_snapshot_state",
    "run_fleet",
    "shard_point",
    "stable_hash",
]
