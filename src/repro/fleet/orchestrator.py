"""Fleet-scale sharded simulation on top of device checkpoints.

A *fleet* is N independent simulated SSDs -- heterogeneous
architectures, seeds, and pre-aged wear states -- serving a shared
population of tenant streams.  Devices never interact (each SSD is its
own DES kernel), so the fleet shards perfectly: every device is one
:class:`~repro.experiments.runner.PointSpec` fanned out over the
experiment runner's worker pool and content-addressed result cache.

The orchestration per shard:

1. **Age** -- build the device, prefill it, and
   :func:`~repro.core.checkpoint.fastforward_wear` it to its spec's P/E
   fraction.  The aged state is snapshotted once and cached under
   ``cache_dir()/snapshots/`` keyed by its build parameters, so a fleet
   of 16 devices sharing 4 (arch, age, seed) combinations pays the
   aging cost 4 times, not 16.
2. **Restore** -- the shard *always* boots via
   :func:`~repro.core.checkpoint.restore_ssd`, even when the snapshot
   was just taken in-process.  A freshly built device and a restored
   one park their flusher pools with different event sequence numbers;
   routing both paths through restore makes the cached and uncached
   runs byte-identical, which the runner's cache contract requires.
3. **Serve** -- tenants hash onto devices through the
   :class:`~repro.fleet.placement.ConsistentHashRing` and run through
   :meth:`~repro.core.ssd.SimulatedSSD.run_tenants`.  A device that
   drew no tenants reports zeroed stats without simulating.

Aggregation folds every shard's device-level latency recorder (raw
samples included) into one fleet :class:`~repro.sim.LatencyStats` via
:meth:`~repro.sim.LatencyStats.merge`, so the reported fleet p99/p999
are exact percentiles over the union of all per-device samples -- not
an average of per-device tails.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import __version__
from ..errors import ConfigError, SamplesUnavailableError
from ..sim import LatencyStats
from .placement import DEFAULT_VNODES, ConsistentHashRing

__all__ = [
    "DeviceSpec",
    "FleetSpec",
    "TenantStream",
    "device_snapshot_state",
    "run_fleet",
    "shard_point",
]

#: Geometry presets a device spec may name (JSON-able stand-ins for the
#: FlashGeometry factories in :mod:`repro.core.config`).
GEOMETRIES = ("sim", "paper", "superblock")


@dataclass(frozen=True)
class DeviceSpec:
    """One simulated SSD of the fleet.

    ``age_pe_fraction`` pre-ages the device: every flash block starts
    at that fraction of its P/E limit (see
    :func:`~repro.core.checkpoint.fastforward_wear`).  ``overrides``
    are extra :class:`~repro.core.SSDConfig` keyword overrides and must
    be JSON-able (they ride inside the shard's cache key).
    """

    device_id: str
    arch: str = "baseline"
    age_pe_fraction: float = 0.0
    seed: int = 1
    geometry: str = "sim"
    overrides: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.device_id:
            raise ConfigError("device needs a device_id")
        if not 0.0 <= self.age_pe_fraction < 1.0:
            raise ConfigError(
                f"age_pe_fraction out of [0,1): {self.age_pe_fraction}")
        if self.geometry not in GEOMETRIES:
            raise ConfigError(
                f"unknown geometry {self.geometry!r}; "
                f"available: {GEOMETRIES}")


@dataclass(frozen=True)
class TenantStream:
    """One tenant request stream, placed on exactly one device.

    A JSON-able stand-in for :class:`~repro.host.TenantSpec` +
    :class:`~repro.workloads.SyntheticWorkload`: the stream is rebuilt
    inside the worker process, so the fleet spec itself stays plain
    data that can ride in a :class:`~repro.experiments.runner.PointSpec`.
    """

    name: str
    pattern: str = "mixed"
    io_size: int = 4096
    read_fraction: float = 0.5
    driver: str = "closed"
    queue_depth: int = 4
    rate_iops: Optional[float] = None
    seed: int = 1

    def params(self) -> Dict[str, object]:
        """The JSON dict shipped to the shard point."""
        return {
            "name": self.name,
            "pattern": self.pattern,
            "io_size": self.io_size,
            "read_fraction": self.read_fraction,
            "driver": self.driver,
            "queue_depth": self.queue_depth,
            "rate_iops": self.rate_iops,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class FleetSpec:
    """A whole fleet run: devices, tenant population, and the window."""

    devices: Sequence[DeviceSpec]
    tenants: Sequence[TenantStream]
    duration_us: float = 2000.0
    warmup_us: float = 0.0
    vnodes: int = DEFAULT_VNODES

    def __post_init__(self) -> None:
        if not self.devices:
            raise ConfigError("fleet needs >= 1 device")
        ids = [device.device_id for device in self.devices]
        if len(set(ids)) != len(ids):
            raise ConfigError(f"duplicate device ids: {sorted(ids)}")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names: {sorted(names)}")
        if self.duration_us <= 0:
            raise ConfigError(
                f"duration_us must be positive: {self.duration_us}")

    def placement(self) -> Dict[str, List[str]]:
        """device_id -> ordered tenant names, via the consistent ring."""
        ring = ConsistentHashRing(
            [device.device_id for device in self.devices],
            vnodes=self.vnodes)
        return ring.assignments(tenant.name for tenant in self.tenants)


# -- aged-device snapshot cache ----------------------------------------------

def _snapshot_cache_path(params: Dict[str, object]):
    """Content-addressed path of one aged-device snapshot."""
    from ..experiments.runner import cache_dir

    payload = json.dumps({"version": __version__, **params}, sort_keys=True)
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return cache_dir() / "snapshots" / f"{digest}.json.gz"


def device_snapshot_state(arch: str, age_pe_fraction: float, seed: int,
                          geometry: str = "sim",
                          overrides: Optional[Dict] = None) -> dict:
    """The aged-device snapshot for one build recipe (cached on disk).

    Builds the device, prefills it, fast-forwards its wear, snapshots,
    and persists the snapshot under ``cache_dir()/snapshots/`` so every
    later shard (or fleet re-run) with the same recipe restores instead
    of re-aging.  ``REPRO_DSSD_CACHE=0`` disables the disk cache, same
    as for the point-result cache.
    """
    from ..core import (build_ssd, fastforward_wear, load_snapshot,
                        paper_geometry, save_snapshot, sim_geometry,
                        snapshot_ssd, superblock_geometry)

    overrides = dict(overrides or {})
    path = _snapshot_cache_path({
        "arch": arch, "age_pe_fraction": age_pe_fraction, "seed": seed,
        "geometry": geometry, "overrides": overrides,
    })
    cache = os.environ.get("REPRO_DSSD_CACHE", "") != "0"
    if cache and path.exists():
        return load_snapshot(path)
    factory = {"sim": sim_geometry, "paper": paper_geometry,
               "superblock": superblock_geometry}[geometry]
    ssd = build_ssd(arch, geometry=factory(), seed=seed, **overrides)
    ssd.prefill()
    if age_pe_fraction > 0.0:
        fastforward_wear(ssd, age_pe_fraction)
    state = snapshot_ssd(ssd)
    if cache:
        save_snapshot(state, path)
    return state


# -- the per-device shard point ----------------------------------------------

def _zero_shard(device_id: str) -> Dict[str, object]:
    """The report row of a device that drew no tenants (never simulated)."""
    return {
        "device_id": device_id,
        "tenant_names": [],
        "requests_completed": 0,
        "io_bandwidth_MBps": 0.0,
        "gc_pages_moved": 0,
        "io_latency": LatencyStats("io").state_dict(),
        "tenants": {},
    }


def shard_point(device_id: str, arch: str, age_pe_fraction: float,
                seed: int, geometry: str, overrides: Dict,
                tenants: List[Dict], duration_us: float,
                warmup_us: float) -> Dict[str, object]:
    """Run one device shard; return its JSON report row.

    Module-level and JSON-parameterized so it is picklable into the
    runner's worker pool and cacheable by content hash.  The device
    **always** boots through snapshot -> restore (see the module
    docstring) so cached and uncached aging produce identical event
    sequences.
    """
    from ..core import restore_ssd
    from ..host import TenantSpec
    from ..workloads import SyntheticWorkload

    if not tenants:
        return _zero_shard(device_id)
    state = device_snapshot_state(arch, age_pe_fraction, seed,
                                  geometry=geometry, overrides=overrides)
    ssd = restore_ssd(state)
    specs = [
        TenantSpec(
            name=tenant["name"],
            workload=SyntheticWorkload(
                pattern=tenant["pattern"],
                io_size=int(tenant["io_size"]),
                read_fraction=float(tenant["read_fraction"]),
            ),
            driver=tenant["driver"],
            queue_depth=int(tenant["queue_depth"]),
            rate_iops=tenant["rate_iops"],
            seed=int(tenant["seed"]),
        )
        for tenant in tenants
    ]
    result = ssd.run_tenants(specs, duration_us=duration_us,
                             warmup_us=warmup_us)
    device = result.device
    return {
        "device_id": device_id,
        "tenant_names": [tenant["name"] for tenant in tenants],
        "requests_completed": device.requests_completed,
        "io_bandwidth_MBps": device.io_bandwidth,
        "gc_pages_moved": device.gc.pages_moved,
        # Raw samples included: fleet percentiles merge exactly.
        "io_latency": device.io_latency.state_dict(),
        "tenants": {
            tenant.name: {
                "completed": tenant.completed,
                "iops": tenant.iops,
                "bandwidth_MBps": tenant.bandwidth,
                "latency": tenant.latency.state_dict(),
            }
            for tenant in result.tenants
        },
    }


# -- fleet orchestration ------------------------------------------------------

def run_fleet(spec: FleetSpec, point=None) -> Dict[str, object]:
    """Shard *spec* over the runner pool and aggregate fleet tails.

    Returns ``{"placement", "shards", "fleet"}``: the tenant placement
    map, one report row per device (in device order), and the
    fleet-level aggregate whose ``p99``/``p999`` are exact percentiles
    over the union of every device's latency samples.  Deterministic
    across ``--jobs`` values: shards are independent simulations and
    results return in spec order.

    *point* substitutes a different module-level shard function with
    :func:`shard_point`'s signature (the experiment harness passes its
    own so cache keys bind to the experiment module).
    """
    from ..experiments.runner import PointSpec, run_points

    placement = spec.placement()
    point_specs = [
        PointSpec.from_callable(
            point if point is not None else shard_point,
            {
                "device_id": device.device_id,
                "arch": device.arch,
                "age_pe_fraction": device.age_pe_fraction,
                "seed": device.seed,
                "geometry": device.geometry,
                "overrides": dict(device.overrides),
                "tenants": [
                    tenant.params() for tenant in spec.tenants
                    if tenant.name in assigned
                ],
                "duration_us": spec.duration_us,
                "warmup_us": spec.warmup_us,
            },
            key=f"fleet:{device.device_id}")
        for device in spec.devices
        for assigned in [set(placement[device.device_id])]
    ]
    shards = run_points(point_specs)

    fleet_latency = LatencyStats("fleet_io")
    requests = 0
    bandwidth = 0.0
    gc_pages = 0
    for shard in shards:
        fleet_latency.merge(LatencyStats.from_state(shard["io_latency"]))
        requests += int(shard["requests_completed"])
        bandwidth += float(shard["io_bandwidth_MBps"])
        gc_pages += int(shard["gc_pages_moved"])
    if not fleet_latency.keep_samples:
        # Merging one sample-free shard recorder silently degrades the
        # fleet recorder; fail here with the shard-level cause instead
        # of a bare SamplesUnavailableError at the p99 line below.
        raise SamplesUnavailableError(
            "a fleet shard shipped a keep_samples=False io_latency "
            "recorder; exact fleet percentiles need every shard's raw "
            "samples")
    active = sum(1 for shard in shards if shard["tenant_names"])
    return {
        "placement": placement,
        "shards": shards,
        "fleet": {
            "devices": len(shards),
            "active_devices": active,
            "tenants": len(spec.tenants),
            "requests_completed": requests,
            "aggregate_bandwidth_MBps": bandwidth,
            "gc_pages_moved": gc_pages,
            "io_mean_us": fleet_latency.mean,
            "io_p99_us": fleet_latency.p99,
            "io_p999_us": fleet_latency.pct(0.999),
        },
    }
