"""Submission-queue arbiters, mirroring the NVMe arbitration models.

An arbiter picks which submission queue the controller fetches from
next.  It sees the queue-pair list (fixed order) plus a per-queue
*eligibility* vector -- a queue is eligible when it is non-empty and
its tenant's token bucket has a token -- and returns the chosen queue
index, or ``None`` when nothing is serviceable.

Three policies, matching the NVMe arbitration mechanisms (spec
Sec 4.13) with the *arbitration burst* -- the maximum commands fetched
from one queue before moving on -- as the shared knob:

* :class:`RoundRobinArbiter` -- equal-priority RR over all queues;
* :class:`WeightedRoundRobinArbiter` -- each queue may fetch
  ``weight * burst`` commands per round before the round restarts;
* :class:`StrictPriorityArbiter` -- lower ``priority`` values always
  win; ties break round-robin within the priority class.

Arbiters are deterministic and purely combinational over the queue
state plus their own cursor/credit bookkeeping, so ordering guarantees
are directly unit-testable without a simulator.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import ConfigError

__all__ = [
    "ARBITERS",
    "Arbiter",
    "RoundRobinArbiter",
    "StrictPriorityArbiter",
    "WeightedRoundRobinArbiter",
    "make_arbiter",
]


class Arbiter:
    """Base arbiter: owns the queue list and the burst setting.

    *queues* need only expose ``__len__`` (pending entries), ``weight``
    and ``priority`` attributes -- the tests drive arbiters with plain
    stand-ins.
    """

    name = "base"

    def __init__(self, queues: Sequence, burst: int = 1):
        if not queues:
            raise ConfigError("arbiter needs at least one queue")
        if burst < 1:
            raise ConfigError(f"arbitration burst must be >= 1: {burst}")
        self.queues = list(queues)
        self.burst = burst

    def select(self, eligible: Sequence[bool]) -> Optional[int]:
        """Index of the next queue to fetch from, or None."""
        raise NotImplementedError

    def _serviceable(self, index: int, eligible: Sequence[bool]) -> bool:
        return eligible[index] and len(self.queues[index]) > 0


class RoundRobinArbiter(Arbiter):
    """Equal-weight round robin with an arbitration burst.

    Up to ``burst`` consecutive commands are fetched from the current
    queue while it stays serviceable; then the cursor advances to the
    next serviceable queue.
    """

    name = "rr"

    def __init__(self, queues: Sequence, burst: int = 1):
        super().__init__(queues, burst)
        self._cursor = len(self.queues) - 1  # first advance lands on 0
        self._burst_left = 0

    def select(self, eligible: Sequence[bool]) -> Optional[int]:
        if self._burst_left > 0 and self._serviceable(self._cursor, eligible):
            self._burst_left -= 1
            return self._cursor
        n = len(self.queues)
        for step in range(1, n + 1):
            index = (self._cursor + step) % n
            if self._serviceable(index, eligible):
                self._cursor = index
                self._burst_left = self.burst - 1
                return index
        return None


class WeightedRoundRobinArbiter(Arbiter):
    """NVMe-style weighted round robin.

    Each round, queue *i* may fetch up to ``weight_i * burst`` commands
    (its quantum), consumed burst-first like the RR arbiter.  When
    every serviceable queue has exhausted its quantum, a new round
    starts and all quanta refresh -- so over any backlogged interval
    the fetch counts converge to the weight ratio.
    """

    name = "wrr"

    def __init__(self, queues: Sequence, burst: int = 1):
        super().__init__(queues, burst)
        self._cursor = len(self.queues) - 1
        self._quanta = [0] * len(self.queues)

    def _quantum(self, index: int) -> int:
        return self.queues[index].weight * self.burst

    def select(self, eligible: Sequence[bool]) -> Optional[int]:
        if (self._quanta[self._cursor] > 0
                and self._serviceable(self._cursor, eligible)):
            self._quanta[self._cursor] -= 1
            return self._cursor
        n = len(self.queues)
        for step in range(1, n + 1):
            index = (self._cursor + step) % n
            if self._quanta[index] > 0 and self._serviceable(index, eligible):
                self._cursor = index
                self._quanta[index] -= 1
                return index
        # Quanta exhausted: refresh the round if anything is serviceable.
        if any(self._serviceable(i, eligible) for i in range(n)):
            self._quanta = [self._quantum(i) for i in range(n)]
            return self.select(eligible)
        return None


class StrictPriorityArbiter(Arbiter):
    """Strict priority: the lowest ``priority`` value always wins.

    Queues sharing a priority class are served round-robin (with the
    arbitration burst) among themselves; a lower class is served only
    while every higher class is empty or ineligible, so sustained
    high-priority traffic starves lower classes by design.
    """

    name = "prio"

    def __init__(self, queues: Sequence, burst: int = 1):
        super().__init__(queues, burst)
        self._cursor = len(self.queues) - 1
        self._burst_left = 0

    def select(self, eligible: Sequence[bool]) -> Optional[int]:
        serviceable = [i for i in range(len(self.queues))
                       if self._serviceable(i, eligible)]
        if not serviceable:
            return None
        top = min(self.queues[i].priority for i in serviceable)
        cls = [i for i in serviceable if self.queues[i].priority == top]
        if self._burst_left > 0 and self._cursor in cls:
            self._burst_left -= 1
            return self._cursor
        # Round-robin within the winning class, resuming past the cursor.
        after = [i for i in cls if i > self._cursor]
        index = after[0] if after else cls[0]
        self._cursor = index
        self._burst_left = self.burst - 1
        return index


ARBITERS = {
    "rr": RoundRobinArbiter,
    "wrr": WeightedRoundRobinArbiter,
    "prio": StrictPriorityArbiter,
}


def make_arbiter(name: str, queues: Sequence, burst: int = 1) -> Arbiter:
    """Build an arbiter by policy name (``"rr"``/``"wrr"``/``"prio"``)."""
    try:
        cls = ARBITERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown arbiter {name!r}; available: {sorted(ARBITERS)}"
        )
    return cls(queues, burst)
