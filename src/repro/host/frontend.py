"""The NVMe multi-queue host frontend: tenants -> arbiter -> FTL.

:class:`MultiQueueFrontend` owns one
:class:`~repro.host.queues.QueuePair` per tenant stream, the tenant
drivers that fill them (closed-loop, Poisson, trace replay), a
per-tenant dispatch :class:`~repro.host.qos.TokenBucket`, and the
pluggable :mod:`~repro.host.arbiter` that decides fetch order.  A
single dispatcher process multiplexes the queues onto the FTL:

1. wait until the device has a free command slot (the NVMe-level
   queue depth, ``ftl.host.queue_depth``);
2. ask the arbiter for the next queue among those that are non-empty
   *and* have a dispatch token (rate-limited tenants with an empty
   bucket are ineligible -- that is where throttling bites);
3. fetch the head entry, stamp the request with its stream's datapath
   priority, and hand it to :meth:`~repro.ftl.Ftl.submit`;
4. on completion, post the CQ entry, free the slot, and record the
   tenant's end-to-end latency (doorbell to completion, submission
   queue wait included).

Because the dispatcher never exceeds the device queue depth, the
FTL-side :class:`~repro.controller.host.HostInterface` slot pool never
blocks in tenant mode -- admission control has already happened at the
frontend, per tenant, under the arbiter's policy.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional, Sequence

from ..errors import ConfigError
from ..sim import Event, Simulator
from .arbiter import Arbiter, make_arbiter
from .qos import TokenBucket
from .queues import QueuePair, Sqe
from .tenant import TenantSpec, TenantStats

__all__ = ["MultiQueueFrontend"]


class MultiQueueFrontend:
    """N tenant queue pairs multiplexed onto one FTL by an arbiter."""

    def __init__(self, sim: Simulator, ftl, tenants: Sequence[TenantSpec],
                 arbiter: str = "rr", arb_burst: int = 1):
        if not tenants:
            raise ConfigError("frontend needs at least one tenant")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names: {names}")
        self.sim = sim
        self.ftl = ftl
        self.tenants = list(tenants)
        self.device_queue_depth = ftl.host.queue_depth
        self.page_size = ftl.geometry.page_size
        self.queue_pairs: List[QueuePair] = [
            QueuePair(sim, qid, spec.qos.sq_depth, weight=spec.qos.weight,
                      priority=spec.qos.priority, name=spec.name)
            for qid, spec in enumerate(self.tenants)
        ]
        self.buckets: List[TokenBucket] = [
            spec.qos.make_bucket(sim) for spec in self.tenants
        ]
        self.stats: List[TenantStats] = [
            TenantStats(spec.name) for spec in self.tenants
        ]
        self.arbiter: Arbiter = make_arbiter(arbiter, self.queue_pairs,
                                             arb_burst)
        self.arbiter_name = arbiter
        self._inflight = 0
        self._drivers_running = 0
        self._wakeup: Optional[Event] = None
        self._started = False

    # -- observability -------------------------------------------------------

    @property
    def inflight(self) -> int:
        """Commands dispatched to the FTL and not yet completed."""
        return self._inflight

    def stats_for(self, name: str) -> TenantStats:
        """The current stats recorder of tenant *name*."""
        for spec, stats in zip(self.tenants, self.stats):
            if spec.name == name:
                return stats
        raise ConfigError(f"unknown tenant {name!r}")

    def reset_stats(self) -> None:
        """Start fresh per-tenant recorders (end of the warmup window)."""
        self.stats = [TenantStats(spec.name) for spec in self.tenants]

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Launch every tenant driver plus the dispatcher (idempotent)."""
        if self._started:
            return
        self._started = True
        for qid, spec in enumerate(self.tenants):
            if spec.driver == "closed":
                for worker in range(spec.queue_depth):
                    self._spawn_driver(self._closed_loop(qid, spec),
                                       f"{spec.name}_cl{worker}")
            elif spec.driver == "poisson":
                rng = random.Random(spec.seed ^ 0xA221)
                self._spawn_driver(self._poisson_loop(qid, spec, rng),
                                   f"{spec.name}_poisson")
            else:
                self._spawn_driver(self._trace_loop(qid, spec),
                                   f"{spec.name}_trace")
        self.sim.process(self._dispatch_loop(), name="mq_dispatch")

    def start_scripted(self, drivers: Sequence[Generator]) -> None:
        """Launch externally supplied driver generators plus the dispatcher.

        The fuzzer's scripted replay path: instead of the stock
        closed/poisson/trace drivers, each generator in *drivers* feeds
        its queue pair directly via :meth:`try_submit` /
        :meth:`submit_blocking` on its own schedule.  The dispatcher,
        arbiters, QoS buckets, and per-tenant stats behave exactly as
        in :meth:`start`.  Idempotent like :meth:`start`; the two entry
        points are mutually exclusive per frontend instance.
        """
        if self._started:
            return
        self._started = True
        for index, generator in enumerate(drivers):
            self._spawn_driver(generator, f"scripted_driver{index}")
        self.sim.process(self._dispatch_loop(), name="mq_dispatch")

    def _spawn_driver(self, generator: Generator, name: str) -> None:
        self._drivers_running += 1
        self.sim.process(self._wrap_driver(generator), name=name)

    def _wrap_driver(self, generator: Generator) -> Generator:
        yield from generator
        self._drivers_running -= 1
        self._kick()

    # -- admission -----------------------------------------------------------

    def try_submit(self, qid: int, request,
                   done: Optional[Event] = None) -> Optional[Sqe]:
        """Non-blocking admission: post to the SQ, or drop when full.

        Returns the posted :class:`Sqe`, or ``None`` for a drop (the
        drop is recorded against the tenant).
        """
        qp = self.queue_pairs[qid]
        sqe = self._make_sqe(qid, request, done)
        if qp.post(sqe):
            self.stats[qid].record_arrival(True)
            self._kick()
            return sqe
        self.stats[qid].record_arrival(False)
        return None

    def submit_blocking(self, qid: int, request,
                        done: Optional[Event] = None) -> Generator:
        """Generator: backpressured admission -- wait for a ring slot.

        The entry's arrival stamp is the *intended* arrival time, so
        tenant latency includes any time spent blocked on a full ring.
        """
        qp = self.queue_pairs[qid]
        sqe = self._make_sqe(qid, request, done)
        while not qp.post(sqe):
            yield qp.wait_for_space()
        self.stats[qid].record_arrival(True)
        self._kick()
        return sqe

    def _make_sqe(self, qid: int, request,
                  done: Optional[Event]) -> Sqe:
        # The stream's QoS priority rides on the request through every
        # shared datapath resource (host link, bus, DRAM, flash bus).
        request.priority = self.tenants[qid].qos.priority
        return Sqe(request, qid, self.sim.now,
                   done if done is not None else self.sim.event())

    # -- tenant drivers ------------------------------------------------------

    def _closed_loop(self, qid: int, spec: TenantSpec) -> Generator:
        while True:
            request = spec.workload.next_request()
            if request is None:
                return
            sqe = yield from self.submit_blocking(qid, request)
            yield sqe.done

    def _poisson_loop(self, qid: int, spec: TenantSpec,
                      rng: random.Random) -> Generator:
        interval = spec.arrival_interval_us
        while True:
            yield self.sim.timeout(rng.expovariate(1.0 / interval))
            request = spec.workload.next_request()
            if request is None:
                return
            yield from self._open_admit(qid, spec, request)

    def _trace_loop(self, qid: int, spec: TenantSpec) -> Generator:
        workload = spec.workload
        if not hasattr(workload, "peek_timestamp"):
            raise ConfigError(
                f"tenant {spec.name}: trace driver needs a workload with "
                "peek_timestamp() (see TraceWorkload)"
            )
        while True:
            timestamp = workload.peek_timestamp()
            if timestamp is None:
                return
            at = timestamp * spec.time_scale
            if at > self.sim.now:
                yield self.sim.timeout(at - self.sim.now)
            request = workload.next_request()
            if request is None:
                return
            yield from self._open_admit(qid, spec, request)

    def _open_admit(self, qid: int, spec: TenantSpec, request) -> Generator:
        """Open-loop admission under the tenant's full-queue policy."""
        if spec.qos.drop_on_full:
            self.try_submit(qid, request)
        else:
            yield from self.submit_blocking(qid, request)

    # -- dispatch ------------------------------------------------------------

    def _eligibility(self) -> List[bool]:
        return [
            len(qp) > 0 and bucket.ready(1.0)
            for qp, bucket in zip(self.queue_pairs, self.buckets)
        ]

    def _earliest_ready(self) -> Optional[float]:
        """When the soonest throttled non-empty queue becomes eligible."""
        times = [
            bucket.ready_at(1.0)
            for qp, bucket in zip(self.queue_pairs, self.buckets)
            if len(qp) > 0 and not bucket.ready(1.0)
        ]
        return min(times) if times else None

    def _all_idle(self) -> bool:
        return (self._drivers_running == 0 and self._inflight == 0
                and all(len(qp) == 0 for qp in self.queue_pairs))

    def _signal(self) -> Event:
        if self._wakeup is None or self._wakeup.triggered:
            self._wakeup = self.sim.event()
        return self._wakeup

    def _kick(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.trigger(None)

    def _dispatch_loop(self) -> Generator:
        while True:
            if self._inflight >= self.device_queue_depth:
                yield self._signal()
                continue
            choice = self.arbiter.select(self._eligibility())
            if choice is not None:
                self._dispatch(choice)
                continue
            if self._all_idle():
                return
            ready_at = self._earliest_ready()
            if ready_at is not None and ready_at > self.sim.now:
                # Sleep until the earliest bucket refill, but wake early
                # for new arrivals or completions.
                yield self.sim.any_of([
                    self._signal(),
                    self.sim.timeout(ready_at - self.sim.now),
                ])
            else:
                yield self._signal()

    def _dispatch(self, qid: int) -> None:
        qp = self.queue_pairs[qid]
        self.buckets[qid].take(1.0)
        sqe = qp.pop()
        self.stats[qid].record_dispatch(sqe.sq_wait)
        self._inflight += 1
        proc = self.ftl.submit(sqe.request)
        self.sim.process(self._completion(qid, sqe, proc),
                         name=f"cq_{qp.name}")

    def _completion(self, qid: int, sqe: Sqe, proc: Event) -> Generator:
        yield proc
        self.queue_pairs[qid].complete(sqe)
        self.stats[qid].record_completion(
            sqe.completed_at - sqe.arrival,
            sqe.request.bytes(self.page_size),
        )
        self._inflight -= 1
        if sqe.done is not None and not sqe.done.triggered:
            sqe.done.trigger(sqe)
        self._kick()
