"""Multi-tenant NVMe-style host frontend.

The paper evaluates the decoupled SSD as a shared, disaggregated
device; this package supplies the host side of that story: per-tenant
submission/completion queue pairs, NVMe-model arbitration (round-robin,
weighted-round-robin, strict priority), token-bucket QoS with admission
control, and open-loop traffic drivers (Poisson, trace replay) next to
the paper's closed-loop model.  :class:`MultiQueueFrontend` ties it all
together and plugs into :meth:`repro.core.ssd.SimulatedSSD.run_tenants`.
"""

from .arbiter import (
    ARBITERS,
    Arbiter,
    RoundRobinArbiter,
    StrictPriorityArbiter,
    WeightedRoundRobinArbiter,
    make_arbiter,
)
from .frontend import MultiQueueFrontend
from .qos import QosPolicy, TokenBucket
from .queues import QueuePair, Sqe
from .tenant import DRIVERS, TenantSpec, TenantStats

__all__ = [
    "ARBITERS",
    "Arbiter",
    "DRIVERS",
    "MultiQueueFrontend",
    "QosPolicy",
    "QueuePair",
    "RoundRobinArbiter",
    "Sqe",
    "StrictPriorityArbiter",
    "TenantSpec",
    "TenantStats",
    "TokenBucket",
    "WeightedRoundRobinArbiter",
    "make_arbiter",
]
