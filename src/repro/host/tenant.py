"""Tenant streams: workload + driver model + QoS policy + statistics.

A :class:`TenantSpec` describes one tenant of the multi-queue frontend:
which workload generates its requests, how arrivals are driven, and the
:class:`~repro.host.qos.QosPolicy` its stream carries.  Three driver
models cover the evaluation space:

* ``"closed"`` -- the paper's closed-loop model: ``queue_depth``
  processes each keep one request in flight (throughput-limited);
* ``"poisson"`` -- open-loop memoryless arrivals at ``rate_iops``
  operations per simulated second, independent of completions, so
  offered load beyond capacity shows up as queueing and tail growth;
* ``"trace"`` -- open-loop replay of the workload's trace timestamps
  (scaled by ``time_scale``), for arrival patterns with burstiness a
  Poisson stream cannot express.

:class:`TenantStats` is the per-tenant measurement bundle -- admission
counters plus :class:`~repro.sim.stats.LatencyStats` recorders for
end-to-end latency and submission-queue wait.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..errors import ConfigError
from ..sim import LatencyStats
from .qos import QosPolicy

__all__ = ["DRIVERS", "TenantSpec", "TenantStats"]

DRIVERS = ("closed", "poisson", "trace")


@dataclass
class TenantSpec:
    """One tenant stream of a multi-tenant run.

    ``workload`` is any object with the standard workload protocol
    (``bind``/``next_request``); the ``"trace"`` driver additionally
    needs ``peek_timestamp`` (see
    :class:`~repro.workloads.traces.TraceWorkload`).
    """

    name: str
    workload: Any
    driver: str = "closed"
    #: Closed-loop concurrency (requests kept in flight).
    queue_depth: int = 16
    #: Poisson arrival rate, operations per simulated second.
    rate_iops: Optional[float] = None
    #: Trace replay: simulated us per unit of trace timestamp.
    time_scale: float = 1.0
    qos: QosPolicy = field(default_factory=QosPolicy)
    seed: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant needs a name")
        if self.driver not in DRIVERS:
            raise ConfigError(
                f"unknown driver {self.driver!r}; available: {DRIVERS}"
            )
        if self.queue_depth < 1:
            raise ConfigError(
                f"tenant queue_depth must be >= 1: {self.queue_depth}"
            )
        if self.driver == "poisson":
            if self.rate_iops is None or self.rate_iops <= 0:
                raise ConfigError(
                    f"poisson driver needs a positive rate_iops, "
                    f"got {self.rate_iops}"
                )
        if self.time_scale <= 0:
            raise ConfigError(f"time_scale must be positive: {self.time_scale}")

    @property
    def arrival_interval_us(self) -> float:
        """Mean Poisson inter-arrival gap in simulated microseconds."""
        if self.rate_iops is None or self.rate_iops <= 0:
            raise ConfigError(f"tenant {self.name} has no arrival rate")
        return 1e6 / self.rate_iops


class TenantStats:
    """Per-tenant measurements collected by the frontend.

    ``arrivals = admitted + dropped`` always holds; ``latency`` records
    doorbell-to-completion time (including submission-queue wait) and
    ``sq_wait`` the queueing component alone.
    """

    def __init__(self, name: str):
        self.name = name
        self.latency = LatencyStats(f"{name}_latency")
        self.sq_wait = LatencyStats(f"{name}_sq_wait")
        self.arrivals = 0
        self.admitted = 0
        self.dropped = 0
        self.dispatched = 0
        self.completed = 0
        self.bytes_completed = 0.0

    def record_arrival(self, admitted: bool) -> None:
        """Count one arrival and its admission outcome."""
        self.arrivals += 1
        if admitted:
            self.admitted += 1
        else:
            self.dropped += 1

    def record_dispatch(self, sq_wait_us: float) -> None:
        """Count one arbiter fetch and its submission-queue wait."""
        self.dispatched += 1
        self.sq_wait.add(sq_wait_us)

    def record_completion(self, latency_us: float, nbytes: float) -> None:
        """Count one completion with its end-to-end latency."""
        self.completed += 1
        self.latency.add(latency_us)
        self.bytes_completed += nbytes

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline per-tenant numbers."""
        return {
            "arrivals": float(self.arrivals),
            "admitted": float(self.admitted),
            "dropped": float(self.dropped),
            "completed": float(self.completed),
            "bytes": self.bytes_completed,
            "mean_us": self.latency.mean,
            "p50_us": self.latency.p50,
            "p99_us": self.latency.p99,
            "sq_wait_mean_us": self.sq_wait.mean,
        }
