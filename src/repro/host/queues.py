"""NVMe-style queue pairs: bounded submission queues with doorbells.

A :class:`QueuePair` models one NVMe submission/completion queue pair
as a host driver sees it: a fixed-depth ring of command slots.  A slot
is occupied from the moment the tenant rings the SQ tail doorbell
(:meth:`QueuePair.post`) until the matching completion is posted and
consumed (:meth:`QueuePair.complete`) -- so ``depth`` bounds the
tenant's total commands in flight, queued *or* executing.  A full ring
backpressures the tenant driver (:meth:`QueuePair.wait_for_space`) or,
under a drop-admission policy, rejects the arrival outright.

The frontend arbiter fetches entries with :meth:`QueuePair.pop`; the
entry (:class:`Sqe`) carries the timestamps that split tenant-perceived
latency into submission-queue wait and device time.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..errors import ConfigError
from ..sim import Event, Simulator

__all__ = ["QueuePair", "Sqe"]


class Sqe:
    """One submission-queue entry: a request plus frontend bookkeeping.

    ``arrival`` is the doorbell time; latency reported per tenant is
    ``completed_at - arrival`` so it includes submission-queue wait --
    the quantity an open-loop (arrival-driven) tenant actually observes.
    """

    __slots__ = ("request", "qid", "arrival", "dispatched_at",
                 "completed_at", "done")

    def __init__(self, request, qid: int, arrival: float,
                 done: Optional[Event] = None):
        self.request = request
        self.qid = qid
        self.arrival = arrival
        self.dispatched_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        #: Fires when the completion is posted (closed-loop drivers wait).
        self.done = done

    @property
    def sq_wait(self) -> float:
        """Time spent queued before the arbiter dispatched the entry."""
        if self.dispatched_at is None:
            raise ConfigError("sqe not dispatched yet")
        return self.dispatched_at - self.arrival


class QueuePair:
    """One submission/completion queue pair owned by a tenant stream.

    ``weight`` and ``priority`` are the arbitration attributes the NVMe
    spec attaches to submission queues (weighted-round-robin weights,
    strict-priority classes); the arbiters read them off the queue.
    """

    def __init__(self, sim: Simulator, qid: int, depth: int,
                 weight: int = 1, priority: int = 0, name: str = ""):
        if depth < 1:
            raise ConfigError(f"queue depth must be >= 1: {depth}")
        if weight < 1:
            raise ConfigError(f"arbitration weight must be >= 1: {weight}")
        self.sim = sim
        self.qid = qid
        self.depth = depth
        self.weight = weight
        self.priority = priority
        self.name = name or f"qp{qid}"
        self._sq: Deque[Sqe] = deque()
        self._inflight = 0
        self._space_waiters: Deque[Event] = deque()
        #: SQ tail doorbell writes (== accepted posts).
        self.doorbells = 0
        self.posted = 0
        self.dispatched = 0
        self.completed = 0

    def __len__(self) -> int:
        """Entries waiting in the submission queue (not yet fetched)."""
        return len(self._sq)

    @property
    def occupancy(self) -> int:
        """Ring slots in use: queued entries plus in-flight commands."""
        return len(self._sq) + self._inflight

    @property
    def has_space(self) -> bool:
        """Whether another command can be posted right now."""
        return self.occupancy < self.depth

    @property
    def inflight(self) -> int:
        """Commands fetched by the controller but not yet completed."""
        return self._inflight

    def post(self, sqe: Sqe) -> bool:
        """Ring the SQ tail doorbell with one new entry.

        Returns False (and accepts nothing) when the ring is full --
        the caller decides between backpressure and dropping.
        """
        if not self.has_space:
            return False
        self._sq.append(sqe)
        self.doorbells += 1
        self.posted += 1
        return True

    def wait_for_space(self) -> Event:
        """Event firing once a ring slot is (or already is) free.

        Waiters are granted in FIFO order, one per freed slot, so
        backpressured arrivals keep their order.
        """
        evt = self.sim.event()
        if self.has_space and not self._space_waiters:
            evt.trigger(self)
        else:
            self._space_waiters.append(evt)
        return evt

    def pop(self) -> Sqe:
        """Arbiter fetch: remove and return the head SQ entry."""
        if not self._sq:
            raise ConfigError(f"pop on empty submission queue {self.name}")
        sqe = self._sq.popleft()
        sqe.dispatched_at = self.sim.now
        self._inflight += 1
        self.dispatched += 1
        return sqe

    def complete(self, sqe: Sqe) -> None:
        """Post the completion for *sqe* and free its ring slot."""
        if self._inflight <= 0:
            raise ConfigError(f"completion on idle queue pair {self.name}")
        self._inflight -= 1
        self.completed += 1
        sqe.completed_at = self.sim.now
        if self._space_waiters and self.has_space:
            self._space_waiters.popleft().trigger(self)
