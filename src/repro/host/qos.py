"""Per-tenant QoS policy: token-bucket rate limits and stream attributes.

A tenant stream carries a :class:`QosPolicy`: an optional token-bucket
rate limit (enforced by the frontend arbiter -- a queue with an empty
bucket is ineligible for dispatch), an arbitration ``weight`` (WRR) and
``priority`` (strict-priority arbitration *and* the datapath priority
its requests carry onto the shared links -- lower is more urgent), the
submission-queue ``sq_depth``, and the admission policy when that queue
fills (backpressure vs drop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError
from ..sim import Simulator

__all__ = ["QosPolicy", "TokenBucket"]

#: Simulated microseconds per second (rates are quoted in ops/s).
_US_PER_S = 1e6


class TokenBucket:
    """A lazily-refilled token bucket over simulated time.

    ``rate_per_us`` tokens accrue per microsecond up to ``burst``
    capacity; the bucket starts full.  ``rate_per_us=None`` means
    unlimited (always ready).  Refill happens on observation, so the
    bucket costs nothing while idle.
    """

    def __init__(self, sim: Simulator, rate_per_us: Optional[float],
                 burst: float = 1.0):
        if rate_per_us is not None and rate_per_us <= 0:
            raise ConfigError(f"bucket rate must be positive: {rate_per_us}")
        if burst < 1.0:
            raise ConfigError(f"bucket burst must be >= 1 token: {burst}")
        self.sim = sim
        self.rate_per_us = rate_per_us
        self.burst = burst
        self._tokens = burst
        self._last = sim.now

    def _refill(self) -> None:
        now = self.sim.now
        if self.rate_per_us is not None and now > self._last:
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate_per_us
            )
        self._last = now

    @property
    def unlimited(self) -> bool:
        """Whether this bucket never gates dispatch."""
        return self.rate_per_us is None

    def available(self) -> float:
        """Tokens available right now (after refill)."""
        if self.unlimited:
            return float("inf")
        self._refill()
        return self._tokens

    def ready(self, n: float = 1.0) -> bool:
        """Whether *n* tokens can be taken immediately."""
        return self.unlimited or self.available() >= n - 1e-12

    def ready_at(self, n: float = 1.0) -> float:
        """Absolute simulated time when *n* tokens will be available."""
        if self.unlimited:
            return self.sim.now
        if n > self.burst:
            raise ConfigError(
                f"cannot ever grant {n} tokens from a burst-{self.burst} bucket"
            )
        self._refill()
        deficit = n - self._tokens
        if deficit <= 0:
            return self.sim.now
        return self.sim.now + deficit / self.rate_per_us

    def take(self, n: float = 1.0) -> None:
        """Consume *n* tokens (caller must have checked :meth:`ready`)."""
        if self.unlimited:
            return
        self._refill()
        if self._tokens < n - 1e-9:
            raise ConfigError(
                f"token bucket underflow: want {n}, have {self._tokens:.3f}"
            )
        self._tokens -= n


@dataclass(frozen=True)
class QosPolicy:
    """The QoS knobs one tenant stream carries.

    ``rate_iops`` / ``burst_ops`` parameterize the dispatch token
    bucket in operations per *second* of simulated time (``None`` =
    unthrottled).  ``priority`` is both the strict-priority arbitration
    class and the datapath priority the stream's requests carry onto
    shared links (lower = more urgent; background flush traffic runs
    at 0).  ``drop_on_full=True`` switches admission control from
    backpressure to dropping when the submission queue is full.
    """

    rate_iops: Optional[float] = None
    burst_ops: float = 4.0
    weight: int = 1
    priority: int = 0
    sq_depth: int = 64
    drop_on_full: bool = False

    def __post_init__(self) -> None:
        if self.rate_iops is not None and self.rate_iops <= 0:
            raise ConfigError(f"rate_iops must be positive: {self.rate_iops}")
        if self.burst_ops < 1.0:
            raise ConfigError(f"burst_ops must be >= 1: {self.burst_ops}")
        if self.weight < 1:
            raise ConfigError(f"weight must be >= 1: {self.weight}")
        if self.sq_depth < 1:
            raise ConfigError(f"sq_depth must be >= 1: {self.sq_depth}")

    @property
    def rate_per_us(self) -> Optional[float]:
        """The token-bucket rate in operations per microsecond."""
        if self.rate_iops is None:
            return None
        return self.rate_iops / _US_PER_S

    def make_bucket(self, sim: Simulator) -> TokenBucket:
        """Build this policy's dispatch token bucket."""
        return TokenBucket(sim, self.rate_per_us, self.burst_ops)
