"""Flash bus channel model.

One ONFI-style bus per channel (paper Table 1: 1 GB/s -- 1000 MHz, 8 bit)
shared by all ways on the channel.  Data transfers serialize on the bus;
each command additionally costs a small fixed command/address overhead.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..errors import ConfigError
from ..sim import Simulator

__all__ = ["FlashChannel"]

#: Default command/address cycle overhead per bus transaction (us).
DEFAULT_CMD_OVERHEAD_US = 0.2


class FlashChannel:
    """The shared data bus of one flash channel.

    ``bandwidth`` is bytes/us (1 GB/s == 1000.0).  The channel is
    half-duplex: reads and writes serialize on one :class:`Link`.
    """

    def __init__(self, sim: Simulator, channel_id: int,
                 bandwidth: float = 1000.0,
                 cmd_overhead_us: float = DEFAULT_CMD_OVERHEAD_US,
                 bin_width: float = 1000.0):
        if bandwidth <= 0:
            raise ConfigError(f"channel bandwidth must be positive: {bandwidth}")
        if cmd_overhead_us < 0:
            raise ConfigError(f"negative command overhead: {cmd_overhead_us}")
        self.sim = sim
        self.channel_id = channel_id
        self.cmd_overhead_us = cmd_overhead_us
        self.link = sim.link(bandwidth, name=f"flash_bus{channel_id}",
                             bin_width=bin_width)
        #: Command/address overhead expressed as bytes-equivalent bus
        #: occupancy -- resolved once (both parameters are fixed at
        #: construction) instead of per transaction on the hot path.
        self._overhead_bytes = int(cmd_overhead_us * self.link.bandwidth)

    @property
    def bandwidth(self) -> float:
        """Bus bandwidth in bytes/us."""
        return self.link.bandwidth

    def transfer(self, nbytes: int, traffic_class: str = "io",
                 priority: int = None) -> Generator:
        """Generator: move *nbytes* over the bus; returns queueing wait.

        The fixed command overhead is modeled as extra bytes-equivalent
        occupancy so that it also serializes on the bus.  Internal GC
        moves are urgent (they hold staging buffers and gate space
        reclamation), so the channel command scheduler services ``gc``
        transactions ahead of buffered host flush traffic by default.
        """
        if priority is None:
            priority = -1 if traffic_class == "gc" else 0
        wait = yield self.link.transfer(
            nbytes + self._overhead_bytes, traffic_class, priority
        )
        return wait

    def occupancy(self, nbytes: int) -> float:
        """Service time (us) for an *nbytes* transaction incl. overhead."""
        return self.cmd_overhead_us + nbytes / self.link.bandwidth

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Busy fraction of the bus."""
        return self.link.utilization(horizon)

    def state_dict(self) -> dict:
        """Checkpoint the bus meters (the bus must be idle)."""
        return {"link": self.link.state_dict()}

    def load_state(self, state: dict) -> None:
        """Restore meters captured by :meth:`state_dict`."""
        self.link.load_state(state["link"])
