"""Flash timing parameter presets (paper Table 1).

Latencies are microseconds.  TLC read/program latencies are ranges in the
paper ("read=60-95us, write=200-500us"); :class:`FlashTiming` stores the
range and exposes both the midpoint (for deterministic runs) and a seeded
sampler (for runs that model page-position-dependent latency).

Hot-path layout: deterministic latencies resolve through flat
per-``(op, channel)`` rows (:class:`TimingTable`) indexed by the
``OP_READ``/``OP_PROGRAM``/``OP_ERASE`` constants instead of per-call
property/branch chains, and batch completion math over homogeneous
same-timestamp flash ops goes through one NumPy array computation when
NumPy is importable (the pure-Python fallback is always present and
produces bit-identical floats -- IEEE-754 add/max are exact either way).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import ConfigError

__all__ = ["FlashTiming", "TimingTable", "ULL_TIMING", "TLC_TIMING",
           "OP_READ", "OP_PROGRAM", "OP_ERASE", "batch_totals",
           "batch_max", "HAVE_NUMPY"]

#: Operation indices into a :class:`TimingTable` row.
OP_READ, OP_PROGRAM, OP_ERASE = 0, 1, 2

try:  # pragma: no cover - exercised via the NumPy-absent CI leg
    # REPRO_DSSD_NO_NUMPY=1 forces the pure-Python batch fallback even
    # when NumPy is importable (other modules legitimately depend on
    # NumPy, so CI cannot simply uninstall it to test this path).
    if os.environ.get("REPRO_DSSD_NO_NUMPY"):
        raise ImportError("vectorized timing disabled: REPRO_DSSD_NO_NUMPY")
    import numpy as _np
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    HAVE_NUMPY = False


@dataclass(frozen=True)
class FlashTiming:
    """Array-operation latencies for one flash technology."""

    name: str
    read_us: Tuple[float, float]
    program_us: Tuple[float, float]
    erase_us: float
    page_size: int

    def __post_init__(self) -> None:
        for field in ("read_us", "program_us"):
            low, high = getattr(self, field)
            if low <= 0 or high < low:
                raise ConfigError(f"invalid {field} range: ({low}, {high})")
        if self.erase_us <= 0:
            raise ConfigError(f"erase_us must be positive: {self.erase_us}")
        if self.page_size < 512:
            raise ConfigError(f"page_size too small: {self.page_size}")
        # The midpoints are read once per array op on the hot path;
        # resolve them once here (frozen dataclass, so via object
        # assignment) into the OP_*-indexed row.
        object.__setattr__(self, "_row", (
            (self.read_us[0] + self.read_us[1]) / 2.0,
            (self.program_us[0] + self.program_us[1]) / 2.0,
            self.erase_us,
        ))

    @property
    def read_mid(self) -> float:
        """Midpoint read latency."""
        return self._row[OP_READ]

    @property
    def program_mid(self) -> float:
        """Midpoint program latency."""
        return self._row[OP_PROGRAM]

    def op_row(self) -> Tuple[float, float, float]:
        """``(read, program, erase)`` latencies indexed by ``OP_*``."""
        return self._row

    def sample_read(self, rng: random.Random) -> float:
        """Draw a read latency uniformly from the device range."""
        low, high = self.read_us
        return rng.uniform(low, high)

    def sample_program(self, rng: random.Random) -> float:
        """Draw a program latency uniformly from the device range."""
        low, high = self.program_us
        return rng.uniform(low, high)

    def page_write_bandwidth(self) -> float:
        """Single-plane program bandwidth in bytes/us.

        For the ULL preset this is 4096 B / 80 us... note the paper quotes
        51.2 MB/s per 1-plane chip, i.e. 4 KiB / 80 us including command
        overheads; with the raw 50 us program time the array-only figure is
        81.9 MB/s.  Experiments use the full pipeline, so only relative
        shapes matter.
        """
        return self.page_size / self.program_mid


def batch_totals(waits: Sequence[float], service: float) -> Tuple[list, float]:
    """Completion math for a batch of homogeneous same-timestamp ops.

    Given the per-plane queueing *waits* of one multi-plane command (all
    planes share one array *service* time and finish at one timestamp),
    returns ``(totals, worst)``: each op's wait+service and the
    worst-case total.  Uses one NumPy array computation when available;
    the pure fallback is bit-identical (IEEE-754 ``+``/``max`` are exact
    operations, not approximations, in both code paths).
    """
    if HAVE_NUMPY and len(waits) >= 8:
        arr = _np.asarray(waits, dtype=_np.float64) + service
        return arr.tolist(), float(arr.max())
    totals = [wait + service for wait in waits]
    return totals, max(totals)


def batch_max(values: Sequence[float]) -> float:
    """Worst case of a batch of waits (NumPy reduction when it pays)."""
    if HAVE_NUMPY and len(values) >= 8:
        return float(_np.asarray(values, dtype=_np.float64).max())
    return max(values)


class TimingTable:
    """Flat per-``(op, channel)`` deterministic latency rows.

    Built once per device from the per-channel :class:`FlashTiming`
    presets (today every channel shares one preset; the table keeps the
    channel axis so heterogeneous-flash configs stay cheap).  Lookup is
    a single index: ``table.latency(op, channel)`` with the ``OP_*``
    constants -- no dict probing, no property descriptors, no branch
    chain on the per-op path.
    """

    __slots__ = ("_flat", "channels")

    def __init__(self, timings: Sequence[FlashTiming]):
        if not timings:
            raise ConfigError("TimingTable needs at least one channel timing")
        self.channels = len(timings)
        flat = []
        for timing in timings:
            flat.extend(timing.op_row())
        self._flat = tuple(flat)

    def latency(self, op: int, channel: int) -> float:
        """Deterministic latency of ``OP_*`` *op* on *channel*."""
        return self._flat[channel * 3 + op]

    def row(self, channel: int) -> Tuple[float, float, float]:
        """``(read, program, erase)`` for one channel."""
        base = channel * 3
        return self._flat[base:base + 3]


#: Ultra-low-latency flash (paper Table 1 "Flash (ULL)").
ULL_TIMING = FlashTiming(
    name="ULL",
    read_us=(5.0, 5.0),
    program_us=(50.0, 50.0),
    erase_us=1000.0,
    page_size=4096,
)

#: Triple-level-cell flash (paper Table 1 "Memory (TLC)").
TLC_TIMING = FlashTiming(
    name="TLC",
    read_us=(60.0, 95.0),
    program_us=(200.0, 500.0),
    erase_us=2000.0,
    page_size=16384,
)
