"""Flash timing parameter presets (paper Table 1).

Latencies are microseconds.  TLC read/program latencies are ranges in the
paper ("read=60-95us, write=200-500us"); :class:`FlashTiming` stores the
range and exposes both the midpoint (for deterministic runs) and a seeded
sampler (for runs that model page-position-dependent latency).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigError

__all__ = ["FlashTiming", "ULL_TIMING", "TLC_TIMING"]


@dataclass(frozen=True)
class FlashTiming:
    """Array-operation latencies for one flash technology."""

    name: str
    read_us: Tuple[float, float]
    program_us: Tuple[float, float]
    erase_us: float
    page_size: int

    def __post_init__(self) -> None:
        for field in ("read_us", "program_us"):
            low, high = getattr(self, field)
            if low <= 0 or high < low:
                raise ConfigError(f"invalid {field} range: ({low}, {high})")
        if self.erase_us <= 0:
            raise ConfigError(f"erase_us must be positive: {self.erase_us}")
        if self.page_size < 512:
            raise ConfigError(f"page_size too small: {self.page_size}")

    @property
    def read_mid(self) -> float:
        """Midpoint read latency."""
        return (self.read_us[0] + self.read_us[1]) / 2.0

    @property
    def program_mid(self) -> float:
        """Midpoint program latency."""
        return (self.program_us[0] + self.program_us[1]) / 2.0

    def sample_read(self, rng: random.Random) -> float:
        """Draw a read latency uniformly from the device range."""
        low, high = self.read_us
        return rng.uniform(low, high)

    def sample_program(self, rng: random.Random) -> float:
        """Draw a program latency uniformly from the device range."""
        low, high = self.program_us
        return rng.uniform(low, high)

    def page_write_bandwidth(self) -> float:
        """Single-plane program bandwidth in bytes/us.

        For the ULL preset this is 4096 B / 80 us... note the paper quotes
        51.2 MB/s per 1-plane chip, i.e. 4 KiB / 80 us including command
        overheads; with the raw 50 us program time the array-only figure is
        81.9 MB/s.  Experiments use the full pipeline, so only relative
        shapes matter.
        """
        return self.page_size / self.program_mid


#: Ultra-low-latency flash (paper Table 1 "Flash (ULL)").
ULL_TIMING = FlashTiming(
    name="ULL",
    read_us=(5.0, 5.0),
    program_us=(50.0, 50.0),
    erase_us=1000.0,
    page_size=4096,
)

#: Triple-level-cell flash (paper Table 1 "Memory (TLC)").
TLC_TIMING = FlashTiming(
    name="TLC",
    read_us=(60.0, 95.0),
    program_us=(200.0, 500.0),
    erase_us=2000.0,
    page_size=16384,
)
