"""Block-level wear and process-variation model.

Following the paper (Sec 6.4, after WAS [40]), each physical block draws
its program/erase (P/E) cycle limit from a Gaussian distribution
(``mean = 5578``, ``sigma = 826.9``).  A block becomes *bad* -- its pages
reach uncorrectable raw bit error rates -- once its erase count exceeds
its sampled limit.

The model is deliberately stateless about erase counts (the flash backend
or the endurance simulator owns those); it only answers "what is this
block's limit?" and "is this block dead at this count?".
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional

import numpy as np

from ..errors import ConfigError

__all__ = ["WearModel", "PAPER_PE_MEAN", "PAPER_PE_SIGMA"]

#: Paper Table 1: gaussian dist., E = 5578.
PAPER_PE_MEAN = 5578.0
#: Paper Table 1: sigma = 826.9.
PAPER_PE_SIGMA = 826.9


class WearModel:
    """Samples and caches per-block P/E limits; computes RBER estimates."""

    def __init__(self, mean: float = PAPER_PE_MEAN,
                 sigma: float = PAPER_PE_SIGMA, seed: int = 1,
                 min_limit: int = 1):
        if mean <= 0:
            raise ConfigError(f"P/E mean must be positive: {mean}")
        if sigma < 0:
            raise ConfigError(f"P/E sigma must be non-negative: {sigma}")
        if min_limit < 1:
            raise ConfigError(f"min_limit must be >= 1: {min_limit}")
        self.mean = mean
        self.sigma = sigma
        self.min_limit = min_limit
        self._seed = seed
        self._rng = random.Random(seed)
        self._limits: Dict[int, int] = {}

    def limit_for(self, block_index: int) -> int:
        """P/E cycle limit for a block (lazily sampled, then cached)."""
        limit = self._limits.get(block_index)
        if limit is None:
            draw = self._rng.gauss(self.mean, self.sigma)
            limit = max(self.min_limit, int(round(draw)))
            self._limits[block_index] = limit
        return limit

    def limits_array(self, n_blocks: int,
                     seed: Optional[int] = None) -> np.ndarray:
        """Vectorized draw of *n_blocks* limits (for the endurance sim).

        Uses an independent numpy generator so the scalar cache keeps its
        own stream; pass *seed* for reproducibility across runs.
        """
        rng = np.random.default_rng(self._seed if seed is None else seed)
        draws = rng.normal(self.mean, self.sigma, size=n_blocks)
        return np.maximum(self.min_limit, np.rint(draws)).astype(np.int64)

    def is_dead(self, block_index: int, erase_count: int) -> bool:
        """Whether a block has worn out at the given erase count."""
        return erase_count >= self.limit_for(block_index)

    def rber(self, erase_count: int, block_index: int,
             base: float = 1e-6, growth: float = 8.0) -> float:
        """Raw bit error rate estimate, exponential in wear fraction.

        ``rber = base * exp(growth * erase_count / limit)`` -- a standard
        first-order wear-out curve; absolute values are illustrative, the
        monotonic shape is what the recycling logic depends on.
        """
        limit = self.limit_for(block_index)
        return base * math.exp(growth * erase_count / limit)

    def read_retries(self, erase_count: int, block_index: int) -> int:
        """Extra read-retry passes needed at this wear level.

        Worn blocks shift their threshold-voltage distributions; the
        controller re-reads with adjusted references until ECC
        converges.  Modeled as a step function of the wear fraction:
        fresh blocks read in one pass, blocks past ~80 % of their life
        need one retry, past ~95 % two.
        """
        limit = self.limit_for(block_index)
        fraction = erase_count / limit if limit else 1.0
        if fraction >= 0.95:
            return 2
        if fraction >= 0.80:
            return 1
        return 0

    def reset(self) -> None:
        """Clear cached limits and restart the sample stream."""
        self._rng = random.Random(self._seed)
        self._limits.clear()

    # -- checkpointing ------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-able checkpoint: cached limits + RNG stream position."""
        from ..sim import int_key_pairs, rng_state_dict

        return {"limits": int_key_pairs(self._limits, int),
                "rng": rng_state_dict(self._rng)}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint."""
        from ..sim import pairs_to_int_dict, rng_load_state

        self._limits = pairs_to_int_dict(state["limits"], int)
        rng_load_state(self._rng, state["rng"])
