"""Flash device geometry and physical addressing.

The hierarchy follows the paper's Table 1 organization::

    SSD -> channel -> way (package) -> die -> plane -> block -> page

Physical page numbers (PPNs) linearize that hierarchy.  Two orders are
provided:

* *hierarchical* -- the natural nested order used to index state arrays;
* *striped* -- consecutive logical pages round-robin across channels,
  then ways, then planes, which is how the FTL allocates pages to expose
  maximum parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple

from ..errors import AddressError

__all__ = ["PhysAddr", "FlashGeometry"]


class PhysAddr(NamedTuple):
    """A fully-resolved physical page address."""

    channel: int
    way: int
    die: int
    plane: int
    block: int
    page: int

    def block_addr(self) -> "PhysAddr":
        """The same address with the page index zeroed (block identity)."""
        # tuple_new is much cheaper than namedtuple._replace on this
        # hot path (every page-state update derives the block identity).
        return tuple.__new__(PhysAddr, (self[0], self[1], self[2],
                                        self[3], self[4], 0))


@dataclass(frozen=True)
class FlashGeometry:
    """Immutable description of the SSD's flash organization.

    Defaults are the paper's ULL performance-evaluation device:
    8 channels x 8 ways x 1 die x 8 planes, 1384 blocks/plane,
    384 pages/block, 4 KiB pages.
    """

    channels: int = 8
    ways: int = 8
    dies: int = 1
    planes: int = 8
    blocks_per_plane: int = 1384
    pages_per_block: int = 384
    page_size: int = 4096

    def __post_init__(self) -> None:
        for field in ("channels", "ways", "dies", "planes",
                      "blocks_per_plane", "pages_per_block", "page_size"):
            if getattr(self, field) < 1:
                raise AddressError(f"{field} must be >= 1")

    # -- derived sizes -------------------------------------------------------

    @property
    def dies_total(self) -> int:
        """Total die count across the device."""
        return self.channels * self.ways * self.dies

    @property
    def planes_total(self) -> int:
        """Total plane count across the device."""
        return self.dies_total * self.planes

    @property
    def blocks_total(self) -> int:
        """Total block count across the device."""
        return self.planes_total * self.blocks_per_plane

    @property
    def pages_total(self) -> int:
        """Total page count across the device."""
        return self.blocks_total * self.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        """Raw capacity in bytes."""
        return self.pages_total * self.page_size

    @property
    def pages_per_plane(self) -> int:
        """Pages per plane."""
        return self.blocks_per_plane * self.pages_per_block

    @property
    def block_size(self) -> int:
        """Block size in bytes."""
        return self.pages_per_block * self.page_size

    # -- PPN <-> address -------------------------------------------------------

    def ppn_of(self, addr: PhysAddr) -> int:
        """Hierarchical linearization of a physical address."""
        self.validate(addr)
        index = addr.channel
        index = index * self.ways + addr.way
        index = index * self.dies + addr.die
        index = index * self.planes + addr.plane
        index = index * self.blocks_per_plane + addr.block
        index = index * self.pages_per_block + addr.page
        return index

    def addr_of(self, ppn: int) -> PhysAddr:
        """Inverse of :meth:`ppn_of`."""
        if not 0 <= ppn < self.pages_total:
            raise AddressError(f"ppn {ppn} out of range [0, {self.pages_total})")
        ppn, page = divmod(ppn, self.pages_per_block)
        ppn, block = divmod(ppn, self.blocks_per_plane)
        ppn, plane = divmod(ppn, self.planes)
        ppn, die = divmod(ppn, self.dies)
        channel, way = divmod(ppn, self.ways)
        return PhysAddr(channel, way, die, plane, block, page)

    # -- block-level linearization ---------------------------------------------

    def plane_index(self, addr: PhysAddr) -> int:
        """Global index of the plane containing *addr*."""
        self.validate(addr)
        index = addr.channel
        index = index * self.ways + addr.way
        index = index * self.dies + addr.die
        return index * self.planes + addr.plane

    def die_index(self, addr: PhysAddr) -> int:
        """Global index of the die containing *addr*."""
        self.validate(addr)
        index = addr.channel
        index = index * self.ways + addr.way
        return index * self.dies + addr.die

    def block_index(self, addr: PhysAddr) -> int:
        """Global index of the block containing *addr*."""
        return self.plane_index(addr) * self.blocks_per_plane + addr.block

    def block_addr_of(self, block_index: int) -> PhysAddr:
        """Inverse of :meth:`block_index` (page field is zero)."""
        if not 0 <= block_index < self.blocks_total:
            raise AddressError(
                f"block index {block_index} out of range [0, {self.blocks_total})"
            )
        return self.addr_of(block_index * self.pages_per_block)

    # -- iteration helpers ------------------------------------------------------

    def iter_dies(self) -> Iterator[PhysAddr]:
        """Yield one address (block 0, page 0) per die, in order."""
        for channel in range(self.channels):
            for way in range(self.ways):
                for die in range(self.dies):
                    yield PhysAddr(channel, way, die, 0, 0, 0)

    def iter_planes_of_die(self, die_addr: PhysAddr) -> Iterator[PhysAddr]:
        """Yield one address per plane of the die holding *die_addr*."""
        for plane in range(self.planes):
            yield die_addr._replace(plane=plane, block=0, page=0)

    def validate(self, addr: PhysAddr) -> None:
        """Raise :class:`AddressError` if *addr* is outside this geometry."""
        # Hot path: one chained comparison, no tuple construction.  The
        # readable loop below only runs to produce the error message.
        if (0 <= addr[0] < self.channels and 0 <= addr[1] < self.ways
                and 0 <= addr[2] < self.dies and 0 <= addr[3] < self.planes
                and 0 <= addr[4] < self.blocks_per_plane
                and 0 <= addr[5] < self.pages_per_block):
            return
        limits = (self.channels, self.ways, self.dies, self.planes,
                  self.blocks_per_plane, self.pages_per_block)
        for name, value, limit in zip(PhysAddr._fields, addr, limits):
            if not 0 <= value < limit:
                raise AddressError(
                    f"{name}={value} outside [0, {limit}) in {addr}"
                )

    def describe(self) -> str:
        """One-line human-readable geometry summary."""
        gib = self.capacity_bytes / (1 << 30)
        return (
            f"{self.channels}ch x {self.ways}way x {self.dies}die x "
            f"{self.planes}pl, {self.blocks_per_plane} blk/pl, "
            f"{self.pages_per_block} pg/blk, {self.page_size} B pages "
            f"({gib:.1f} GiB)"
        )
