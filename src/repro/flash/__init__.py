"""Flash memory substrate: geometry, timing, dies/planes, buses, wear."""

from .channel import FlashChannel
from .chip import BlockState, FlashBackend, FlashPlane, OpBreakdown
from .geometry import FlashGeometry, PhysAddr
from .timing import TLC_TIMING, ULL_TIMING, FlashTiming
from .wear import PAPER_PE_MEAN, PAPER_PE_SIGMA, WearModel

__all__ = [
    "BlockState",
    "FlashBackend",
    "FlashChannel",
    "FlashGeometry",
    "FlashPlane",
    "FlashTiming",
    "OpBreakdown",
    "PAPER_PE_MEAN",
    "PAPER_PE_SIGMA",
    "PhysAddr",
    "TLC_TIMING",
    "ULL_TIMING",
    "WearModel",
]
