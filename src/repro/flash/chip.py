"""Flash die / plane behavioural model.

Each *plane* is a single-operation server: one array operation (read,
program, erase) occupies it for the technology latency.  Multi-plane
commands (paper Sec 1, PaGC) occupy several planes of the same die
concurrently for a single array time.

The model enforces NAND programming discipline per block -- a page may
be programmed exactly once between erases -- with O(blocks) state.
Page *content* is not simulated; the FTL layers track logical validity.
"""

from __future__ import annotations

import random
from typing import Dict, Generator, Iterable, List, Optional

from ..errors import AddressError, FlashError
from ..sim import Simulator
from .geometry import FlashGeometry, PhysAddr
from .timing import FlashTiming, TimingTable, batch_max

__all__ = ["BlockState", "FlashPlane", "FlashBackend", "OpBreakdown"]


class BlockState:
    """Per-physical-block programming/erase state.

    The backend tracks *which* pages of a block have been programmed
    since the last erase.  Reprogramming without an erase is an error
    (the invariant GC correctness rests on).  Strict intra-block
    program *ordering* is intentionally not enforced as a wait: the
    FTL allocates pages in order, but concurrent datapath processes may
    complete programs out of order, and blocking them on their
    predecessors can deadlock against capacity-limited stages (dBUF
    credits, flush workers) while adding nothing to the contention
    metrics this model exists to measure.
    """

    __slots__ = ("programmed", "erase_count")

    def __init__(self) -> None:
        self.programmed: set = set()
        self.erase_count = 0

    @property
    def write_ptr(self) -> int:
        """Number of pages programmed since the last erase."""
        return len(self.programmed)

    def __repr__(self) -> str:
        return (
            f"BlockState(programmed={len(self.programmed)}, "
            f"erases={self.erase_count})"
        )


class OpBreakdown:
    """Timing attribution for one flash array operation."""

    __slots__ = ("chip_wait", "array_time")

    def __init__(self, chip_wait: float, array_time: float):
        self.chip_wait = chip_wait
        self.array_time = array_time

    @property
    def total(self) -> float:
        """Wait plus service time."""
        return self.chip_wait + self.array_time


class FlashPlane:
    """One flash plane: a single-slot resource plus busy accounting."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.resource = sim.resource(capacity=1, name=name)
        self.busy_time = 0.0
        self.op_counts: Dict[str, int] = {"read": 0, "program": 0, "erase": 0}

    def occupy(self, duration: float, op: str) -> Generator:
        """Generator: hold the plane for *duration*, yielding wait time.

        Interrupt-safe: the plane slot is returned (and the busy time
        actually consumed is accounted) in a ``finally``, so a process
        preempted mid-operation cannot leak the plane.
        """
        t_request = self.sim.now
        grant = self.resource.request()
        service_start = None
        try:
            yield grant
            service_start = self.sim.now
            yield self.sim.timeout(duration)
        finally:
            if service_start is not None:
                self.busy_time += self.sim.now - service_start
                self.op_counts[op] = self.op_counts.get(op, 0) + 1
            self.resource.cancel(grant)
        return service_start - t_request

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Busy fraction of the plane over ``[0, horizon]``."""
        horizon = horizon if horizon is not None else self.sim.now
        return min(1.0, self.busy_time / horizon) if horizon > 0 else 0.0

    def state_dict(self) -> dict:
        """Checkpoint the plane's meters (the slot itself must be idle)."""
        if self.resource.in_use or self.resource.queue_length:
            raise FlashError(f"cannot snapshot busy plane {self.name!r}")
        return {"busy_time": self.busy_time,
                "op_counts": dict(self.op_counts)}

    def load_state(self, state: dict) -> None:
        """Restore meters captured by :meth:`state_dict`."""
        self.busy_time = float(state["busy_time"])
        self.op_counts = {op: int(count)
                          for op, count in state["op_counts"].items()}


class FlashBackend:
    """The full flash array: every plane of every die, plus block state.

    Array operations are exposed as generators intended to be driven by
    flash-controller processes (``yield from backend.read(addr)``).  Each
    returns an :class:`OpBreakdown` attributing time to plane contention
    versus array service.
    """

    def __init__(self, sim: Simulator, geometry: FlashGeometry,
                 timing: FlashTiming, seed: int = 1,
                 enforce_discipline: bool = True,
                 deterministic_timing: bool = True):
        self.sim = sim
        self.geometry = geometry
        self.timing = timing
        self.enforce_discipline = enforce_discipline
        self.deterministic_timing = deterministic_timing
        self._rng = random.Random(seed)
        self.planes: List[FlashPlane] = [
            FlashPlane(sim, name=f"plane{i}")
            for i in range(geometry.planes_total)
        ]
        self._blocks: Dict[int, BlockState] = {}
        # Linearization strides for addresses already validated once:
        # read/program/erase validate up front and then index planes and
        # blocks without re-running the per-field bounds checks.
        self._plane_strides = (
            geometry.ways * geometry.dies * geometry.planes,
            geometry.dies * geometry.planes,
            geometry.planes,
        )
        self._blocks_per_plane = geometry.blocks_per_plane
        #: Deterministic latency rows resolved by (OP_*, channel) index;
        #: every channel shares this backend's timing preset.
        self.timing_table = TimingTable([timing] * geometry.channels)
        self._read_mid, self._program_mid, _ = self.timing_table.row(0)

    def _plane_id(self, addr: PhysAddr) -> int:
        """Plane index of a *validated* address (no bounds re-check)."""
        s0, s1, s2 = self._plane_strides
        return addr[0] * s0 + addr[1] * s1 + addr[2] * s2 + addr[3]

    def _block_state_at(self, index: int) -> BlockState:
        state = self._blocks.get(index)
        if state is None:
            state = self._blocks[index] = BlockState()
        return state

    # -- state access --------------------------------------------------------

    def plane_of(self, addr: PhysAddr) -> FlashPlane:
        """The :class:`FlashPlane` serving *addr*."""
        return self.planes[self.geometry.plane_index(addr)]

    def block_state(self, addr: PhysAddr) -> BlockState:
        """Mutable per-block state for the block containing *addr*."""
        index = self.geometry.block_index(addr)
        state = self._blocks.get(index)
        if state is None:
            state = self._blocks[index] = BlockState()
        return state

    def erase_count(self, addr: PhysAddr) -> int:
        """P/E cycles performed on the block containing *addr*."""
        return self.block_state(addr).erase_count

    # -- latency draws ---------------------------------------------------------

    def _read_latency(self) -> float:
        if self.deterministic_timing:
            return self._read_mid
        return self.timing.sample_read(self._rng)

    def _program_latency(self) -> float:
        if self.deterministic_timing:
            return self._program_mid
        return self.timing.sample_program(self._rng)

    # -- array operations --------------------------------------------------------

    def read(self, addr: PhysAddr) -> Generator:
        """Read one page from the array into the plane's page register."""
        self.geometry.validate(addr)
        plane_id = self._plane_id(addr)
        if self.enforce_discipline:
            state = self._block_state_at(
                plane_id * self.geometry.blocks_per_plane + addr[4])
            if addr[5] not in state.programmed:
                raise FlashError(f"read of unwritten page {addr}")
        duration = self._read_latency()
        wait = yield from self.planes[plane_id].occupy(duration, "read")
        return OpBreakdown(wait, duration)

    def program(self, addr: PhysAddr) -> Generator:
        """Program one page (reprogram without erase is rejected)."""
        self.geometry.validate(addr)
        plane_id = self._plane_id(addr)
        if self.enforce_discipline:
            state = self._block_state_at(
                plane_id * self.geometry.blocks_per_plane + addr[4])
            if addr[5] in state.programmed:
                raise FlashError(f"reprogram of page {addr} without erase")
            state.programmed.add(addr[5])
        duration = self._program_latency()
        wait = yield from self.planes[plane_id].occupy(duration, "program")
        return OpBreakdown(wait, duration)

    def erase(self, addr: PhysAddr) -> Generator:
        """Erase the block containing *addr*."""
        self.geometry.validate(addr)
        plane_id = self._plane_id(addr)
        state = self._block_state_at(
            plane_id * self.geometry.blocks_per_plane + addr[4])
        state.programmed.clear()
        state.erase_count += 1
        plane = self.planes[plane_id]
        wait = yield from plane.occupy(self.timing.erase_us, "erase")
        return OpBreakdown(wait, self.timing.erase_us)

    def mark_block_programmed(self, addr: PhysAddr) -> None:
        """Instantly mark every page of *addr*'s block programmed.

        Pre-conditioning hook: lets experiment setup declare prefilled
        blocks readable without simulating the fill traffic.
        """
        state = self.block_state(addr)
        state.programmed = set(range(self.geometry.pages_per_block))

    def multiplane(self, addrs: Iterable[PhysAddr], op: str) -> Generator:
        """Execute *op* on several planes of one die as one command.

        All addresses must live on the same die and on distinct planes;
        the command occupies every plane concurrently for one array time.
        Returns an :class:`OpBreakdown` with the worst-case plane wait.
        """
        addr_list = list(addrs)
        if not addr_list:
            raise AddressError("multiplane command with no addresses")
        die = self.geometry.die_index(addr_list[0])
        plane_ids = set()
        for addr in addr_list:
            self.geometry.validate(addr)
            if self.geometry.die_index(addr) != die:
                raise AddressError("multiplane command spans dies")
            plane_id = self.geometry.plane_index(addr)
            if plane_id in plane_ids:
                raise AddressError("multiplane command reuses a plane")
            plane_ids.add(plane_id)

        if op == "read":
            duration = self._read_latency()
        elif op == "program":
            duration = self._program_latency()
        elif op == "erase":
            duration = self.timing.erase_us
        else:
            raise FlashError(f"unknown multiplane op {op!r}")

        if self.enforce_discipline:
            for addr in addr_list:
                state = self.block_state(addr)
                if op == "program" and addr.page in state.programmed:
                    raise FlashError(
                        f"multiplane reprogram without erase: {addr}"
                    )
                if op == "read" and addr.page not in state.programmed:
                    raise FlashError(f"multiplane read of unwritten {addr}")
        if op == "program":
            for addr in addr_list:
                self.block_state(addr).programmed.add(addr.page)
        elif op == "erase":
            for addr in addr_list:
                state = self.block_state(addr)
                state.programmed.clear()
                state.erase_count += 1

        procs = [
            self.sim.process(self.plane_of(addr).occupy(duration, op))
            for addr in addr_list
        ]
        waits = yield self.sim.all_of(procs)
        # All planes complete at one timestamp; the worst-case wait
        # resolves in one (NumPy-batched) reduction.
        return OpBreakdown(batch_max(waits), duration)

    # -- checkpointing -----------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-able checkpoint: per-block program/erase state + RNG.

        Programmed-page sets are stored per touched block (sorted
        ``[index, [pages...], erase_count]`` triples); untouched blocks
        need no entry.  The timing RNG position is captured so a
        non-deterministic-timing device resumes the same latency
        stream.
        """
        from ..sim import rng_state_dict

        blocks = []
        for index in sorted(self._blocks):
            state = self._blocks[index]
            blocks.append([index, sorted(state.programmed),
                           state.erase_count])
        return {"blocks": blocks, "rng": rng_state_dict(self._rng)}

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint (same geometry)."""
        from ..sim import rng_load_state

        self._blocks = {}
        for index, programmed, erase_count in state["blocks"]:
            block = BlockState()
            block.programmed = set(int(page) for page in programmed)
            block.erase_count = int(erase_count)
            self._blocks[int(index)] = block
        rng_load_state(self._rng, state["rng"])

    # -- reporting ---------------------------------------------------------------

    def mean_plane_utilization(self) -> float:
        """Average busy fraction across all planes."""
        if not self.planes:
            return 0.0
        return sum(p.utilization() for p in self.planes) / len(self.planes)
